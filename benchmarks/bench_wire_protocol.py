"""Wire-protocol benchmark: typed frames + shared-memory allgather vs
the legacy pickle mesh.

Workload: Algorithm 3 (combined divide-and-conquer) on yeast Network I
(small variant) with a ``q_sub = 5`` tail partition and 8 ranks per
subproblem on the **process backend** — real pipes, real serialization,
real shared memory.  The typed leg forces ``REPRO_WIRE_SEGMENT_MIN=0``
so every Communicate&Merge allgather runs over the shared-memory arena
plane: each rank serializes its packed candidate block **once** into its
arena and publishes a 5-tuple descriptor along the log2(P) dissemination
hops; the pickle leg re-pickles per peer and pushes full blobs through
P-1 mesh pipes.

Measured per leg (via the extended :class:`~repro.mpi.tracing.CommTrace`
wire counters):

* **serialized payload bytes per rank** (``wire_bytes_sent``) — frames /
  blobs the transport actually moved, control plane excluded.  This is
  the acceptance ratio: the arena plane moves the frame once where the
  mesh moves a (bigger) pickle P-1 times, so typed wins by well over the
  asserted 5x (~15x observed at P=8).
* serialization work (``ser_bytes`` / ``n_serializations``) — bytes
  produced by ``dumps``/``encode`` calls; serialize-once keeps this flat
  in fan-out.
* transport messages per rank (measured ``n_messages``: ceil(log2 P)=3
  descriptor sends per typed allgather vs P-1=7 blob sends for pickle).
* **modeled Communicate&Merge seconds**: the Calhoun platform replay
  (``latency x n_messages + bytes / bandwidth``) over the measured
  traces — the repository's Tables II-IV communicate column.  At this
  payload scale (~100 B-2 KB per round) a real interconnect is latency
  bound, so the 3-vs-7 message schedule is the win and the ratio is
  asserted at >= 1.05 (observed ~2x).
* measured host Communicate&Merge seconds and full-run wall — reported,
  with the full-run ratio asserted only against a no-regression floor:
  on a single-CPU host the dissemination schedule's extra superstep
  depth costs more than 4 fewer 100-byte pipe writes save, so host
  t_comm cannot honestly favor typed here; the modeled replay (real
  message counts, real bytes, paper platform constants) is the
  acceptance metric instead.

The EFM set must be bit-identical between legs.  Writes
``BENCH_wire.json`` plus a text table under ``benchmarks/out/``.
Repetitions come from ``REPRO_BENCH_REPS`` (default 3); each leg keeps
its best-wall repetition.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bench.tables import Table
from repro.cluster.platform import CALHOUN
from repro.config import AlgorithmOptions
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

Q_SUB = 5
N_RANKS = 8
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))
#: Acceptance: typed + arena moves >= 5x fewer serialized payload bytes
#: per rank than the pickle mesh (design point ~15x at P=8).
WIRE_BYTES_RATIO_TARGET = 5.0
#: Acceptance: modeled Communicate&Merge (Calhoun replay of the measured
#: traces) improves by >= 1.05x (design point ~2x from 3-vs-7 messages).
MODELED_COMM_RATIO_FLOOR = 1.05
#: No-regression floor for measured full-run wall (pickle/typed): typed
#: must not cost more than ~1.8x wall on a 1-CPU host (observed
#: 0.7-0.95).
WALL_RATIO_FLOOR = 0.55


def _aggregate(run) -> dict:
    traces = [t for s in run.subsets for t in s.rank_traces]
    n = max(1, len(traces))
    # Modeled C&M: per subset the slowest rank gates the superstep; the
    # subsets run one after another on the schedule.
    modeled = sum(
        max((CALHOUN.t_communicate(t) for t in s.rank_traces), default=0.0)
        for s in run.subsets
    )
    t_comm = 0.0
    for s in run.subsets:
        if not s.rank_stats:
            continue
        # Per-iteration minimum across rank replicas: scheduler-noise
        # rejection for sub-millisecond windows (see candidate-pipeline
        # bench for the rationale).
        for its in zip(*(rs.iterations for rs in s.rank_stats)):
            t_comm += min(it.t_communicate + it.t_merge for it in its)
    return {
        "wire_bytes_per_rank": sum(t.wire_bytes_sent for t in traces) / n,
        "ser_bytes_per_rank": sum(t.ser_bytes for t in traces) / n,
        "n_ser_per_rank": sum(t.n_serializations for t in traces) / n,
        "msgs_per_rank": sum(t.n_messages for t in traces) / n,
        "modeled_comm_s": modeled,
        "t_comm_merge_s": t_comm,
        "n_efms": run.n_efms,
    }


@pytest.fixture(scope="module")
def wire_runs():
    reduced = compress_network(yeast_1_small()).reduced
    partition = select_partition_reactions(
        reduced, Q_SUB, method="tail", options=AlgorithmOptions()
    )
    saved = os.environ.get("REPRO_WIRE_SEGMENT_MIN")
    out: dict = {}
    try:
        for proto, seg_min in (("typed", "0"), ("pickle", None)):
            if seg_min is None:
                os.environ.pop("REPRO_WIRE_SEGMENT_MIN", None)
            else:
                os.environ["REPRO_WIRE_SEGMENT_MIN"] = seg_min
            options = AlgorithmOptions(wire_protocol=proto)
            best = None
            for _ in range(REPS):
                t0 = time.perf_counter()
                run = combined_parallel(
                    reduced, partition, N_RANKS, options=options, backend="process"
                )
                wall = time.perf_counter() - t0
                if best is None or wall < best[2]:
                    best = (run, _aggregate(run), wall)
            out[proto] = best
    finally:
        if saved is None:
            os.environ.pop("REPRO_WIRE_SEGMENT_MIN", None)
        else:
            os.environ["REPRO_WIRE_SEGMENT_MIN"] = saved
    return out


def test_protocols_bit_identical(wire_runs):
    typed_run = wire_runs["typed"][0]
    pickle_run = wire_runs["pickle"][0]
    assert typed_run.n_efms == pickle_run.n_efms == 530
    assert np.array_equal(typed_run.efms(), pickle_run.efms())


def test_wire_protocol_benchmark_artifacts(wire_runs, write_artifact):
    _, typed, t_typed = wire_runs["typed"]
    _, pickled, t_pickle = wire_runs["pickle"]

    def ratio(a, b):
        return a / b if b > 0 else float("inf")

    wire_ratio = ratio(pickled["wire_bytes_per_rank"], typed["wire_bytes_per_rank"])
    ser_ratio = ratio(pickled["ser_bytes_per_rank"], typed["ser_bytes_per_rank"])
    modeled_ratio = ratio(pickled["modeled_comm_s"], typed["modeled_comm_s"])
    comm_ratio = ratio(pickled["t_comm_merge_s"], typed["t_comm_merge_s"])
    wall_ratio = ratio(t_pickle, t_typed)

    table = Table(
        title=(
            f"Wire protocol, yeast-I-small, q_sub={Q_SUB}, "
            f"{N_RANKS} ranks/subproblem, process backend"
        ),
        columns=[
            "protocol",
            "wire B/rank",
            "ser B/rank",
            "msgs/rank",
            "modeled C&M [ms]",
            "host C&M [s]",
            "wall [s]",
            "EFMs",
        ],
    )
    for label, agg, wall in (("typed", typed, t_typed), ("pickle", pickled, t_pickle)):
        table.add_row(
            label,
            f"{agg['wire_bytes_per_rank']:.0f}",
            f"{agg['ser_bytes_per_rank']:.0f}",
            f"{agg['msgs_per_rank']:.1f}",
            f"{agg['modeled_comm_s'] * 1e3:.3f}",
            f"{agg['t_comm_merge_s']:.3f}",
            f"{wall:.2f}",
            agg["n_efms"],
        )
    table.add_row(
        "ratio",
        f"{wire_ratio:.1f}x",
        f"{ser_ratio:.1f}x",
        f"{ratio(pickled['msgs_per_rank'], typed['msgs_per_rank']):.1f}x",
        f"{modeled_ratio:.2f}x",
        f"{comm_ratio:.2f}x",
        f"{wall_ratio:.2f}x",
        "=",
    )
    write_artifact("BENCH_wire.txt", table.render())

    def leg(agg, wall):
        return {
            "wire_bytes_per_rank": round(agg["wire_bytes_per_rank"], 1),
            "ser_bytes_per_rank": round(agg["ser_bytes_per_rank"], 1),
            "n_ser_per_rank": round(agg["n_ser_per_rank"], 1),
            "msgs_per_rank": round(agg["msgs_per_rank"], 1),
            "modeled_comm_s": round(agg["modeled_comm_s"], 6),
            "t_comm_merge_s": round(agg["t_comm_merge_s"], 4),
            "wall_s": round(wall, 4),
            "n_efms": agg["n_efms"],
        }

    payload = {
        "network": "yeast-I-small",
        "q_sub": Q_SUB,
        "n_ranks": N_RANKS,
        "backend": "process",
        "reps": REPS,
        "platform_replay": CALHOUN.name,
        "typed": leg(typed, t_typed),
        "pickle": leg(pickled, t_pickle),
        "wire_bytes_per_rank_ratio": round(wire_ratio, 3),
        "ser_bytes_per_rank_ratio": round(ser_ratio, 3),
        "modeled_comm_ratio": round(modeled_ratio, 3),
        "host_comm_merge_ratio": round(comm_ratio, 3),
        "wall_ratio": round(wall_ratio, 3),
        "targets": {
            "wire_bytes_per_rank_ratio": WIRE_BYTES_RATIO_TARGET,
            "modeled_comm_ratio_floor": MODELED_COMM_RATIO_FLOOR,
            "wall_ratio_floor": WALL_RATIO_FLOOR,
        },
    }
    write_artifact("BENCH_wire.json", json.dumps(payload, indent=2))

    assert wire_ratio >= WIRE_BYTES_RATIO_TARGET, (
        f"serialized payload bytes/rank ratio {wire_ratio:.2f} below "
        f"{WIRE_BYTES_RATIO_TARGET}"
    )
    assert modeled_ratio >= MODELED_COMM_RATIO_FLOOR, (
        f"modeled Communicate&Merge ratio {modeled_ratio:.2f} below "
        f"{MODELED_COMM_RATIO_FLOOR}"
    )
    assert wall_ratio >= WALL_RATIO_FLOOR, (
        f"full-run wall ratio {wall_ratio:.2f} below the no-regression "
        f"floor {WALL_RATIO_FLOOR}"
    )
