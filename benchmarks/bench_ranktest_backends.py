"""Rank-test backend benchmark: the batched engine vs. the loop reference.

Workload: the combined divide-and-conquer run (Algorithm 3) on the yeast
Network I small variant with a ``q_sub = 5`` tail partition — the
configuration the batched engine targets, where the ``2^q_sub``
subproblems repeatedly test overlapping supports of the same reduced
stoichiometry and the shared rank memo turns that redundancy into hits.

Reports the rank-test phase time (``t_rank_test`` in ``RunStats``) for
both backends and writes a machine-readable ``BENCH_ranktest.json``
artifact next to the text reports under ``benchmarks/out/``.  Repetitions
come from ``REPRO_BENCH_REPS`` (default 3; CI's smoke job sets 1); each
backend's time is the best over repetitions, which is the standard guard
against scheduler noise on shared runners.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bench.tables import Table
from repro.config import AlgorithmOptions
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions
from repro.efm.api import compute_efms
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

Q_SUB = 5
SPEEDUP_TARGET = 3.0
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))


def _canonical(rows: np.ndarray) -> np.ndarray:
    """Unit max-norm scale + lexicographic sort, for order/scale-free
    EFM-set comparison (mirrors the test suite's helper)."""
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    if rows.shape[0] == 0:
        return rows
    scale = np.abs(rows).max(axis=1, keepdims=True)
    scale[scale == 0] = 1.0
    keys = np.round(rows / scale, 9)
    return keys[np.lexsort(keys.T[::-1])]


@pytest.fixture(scope="module")
def backend_runs():
    reduced = compress_network(yeast_1_small()).reduced
    partition = select_partition_reactions(
        reduced, Q_SUB, method="tail", options=AlgorithmOptions()
    )
    out = {"partition": partition, "reduced": reduced}
    for backend in ("loop", "batched"):
        options = AlgorithmOptions(rank_backend=backend)
        best = None
        for _ in range(REPS):
            run = combined_parallel(reduced, partition, 1, options=options)
            t_rank = sum(
                s.stats.t_rank_test for s in run.subsets if s.stats is not None
            )
            if best is None or t_rank < best[1]:
                best = (run, t_rank)
        out[backend] = best
    return out


def _stat_sum(run, attr: str) -> int:
    return sum(
        getattr(s.stats, attr) for s in run.subsets if s.stats is not None
    )


def test_backends_same_efm_set(backend_runs):
    loop_run, _ = backend_runs["loop"]
    batched_run, _ = backend_runs["batched"]
    assert loop_run.n_efms == batched_run.n_efms == 530
    ca, cb = _canonical(loop_run.efms()), _canonical(batched_run.efms())
    assert ca.shape == cb.shape
    assert np.allclose(ca, cb, atol=1e-7)


def test_ranktest_backends_artifact(backend_runs, write_artifact):
    loop_run, t_loop = backend_runs["loop"]
    batched_run, t_batched = backend_runs["batched"]
    speedup = t_loop / t_batched
    hits = _stat_sum(batched_run, "total_rank_cache_hits")
    tested = _stat_sum(batched_run, "total_rank_tests")
    batches = _stat_sum(batched_run, "total_rank_batches")

    table = Table(
        title=(
            "BENCH — rank-test backends "
            f"(yeast-I-small, combined, q_sub={Q_SUB}, best of {REPS})"
        ),
        columns=[
            "backend", "# EFM", "rank tests", "t_rank_test (s)",
            "cache hits", "SVD batches",
        ],
    )
    table.add_row(
        "loop", loop_run.n_efms, _stat_sum(loop_run, "total_rank_tests"),
        round(t_loop, 4), 0, 0,
    )
    table.add_row(
        "batched", batched_run.n_efms, tested, round(t_batched, 4),
        hits, batches,
    )
    write_artifact("ranktest_backends.txt", table.render())

    payload = {
        "benchmark": "ranktest_backends",
        "network": "yeast-I-small",
        "workload": {
            "method": "combined",
            "q_sub": Q_SUB,
            "partition": list(backend_runs["partition"]),
            "repetitions": REPS,
            "aggregation": "best",
        },
        "loop": {
            "t_rank_test": t_loop,
            "n_efms": loop_run.n_efms,
            "rank_tests": _stat_sum(loop_run, "total_rank_tests"),
        },
        "batched": {
            "t_rank_test": t_batched,
            "n_efms": batched_run.n_efms,
            "rank_tests": tested,
            "cache_hits": hits,
            "svd_batches": batches,
        },
        "speedup": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "meets_target": bool(speedup >= SPEEDUP_TARGET),
    }
    write_artifact("BENCH_ranktest.json", json.dumps(payload, indent=2))


def test_ranktest_speedup_target(backend_runs):
    """The tentpole's acceptance bar: >= 3x on the rank-test phase."""
    _, t_loop = backend_runs["loop"]
    _, t_batched = backend_runs["batched"]
    assert t_loop / t_batched >= SPEEDUP_TARGET, (
        f"rank-test speedup {t_loop / t_batched:.2f}x below "
        f"{SPEEDUP_TARGET}x target (loop {t_loop:.4f}s vs "
        f"batched {t_batched:.4f}s)"
    )


def test_cache_hits_across_subproblems(backend_runs):
    """Algorithm 3's redundancy must become memo hits."""
    batched_run, _ = backend_runs["batched"]
    hits = _stat_sum(batched_run, "total_rank_cache_hits")
    tested = _stat_sum(batched_run, "total_rank_tests")
    assert hits > tested // 2  # majority of lookups served from the memo


def test_medium_registry_equivalence():
    """Backend equivalence at the medium registry scale (the small
    variants and toy run the same assertion in the tier-1 parity suite;
    yeast-II-medium is out of pure-Python benchmark reach)."""
    from repro.models import variants

    net = variants.yeast_1_medium()
    results = {
        be: compute_efms(net, options=AlgorithmOptions(rank_backend=be))
        for be in ("loop", "batched")
    }
    assert results["loop"].n_efms == results["batched"].n_efms
    assert results["loop"].same_modes_as(results["batched"])
