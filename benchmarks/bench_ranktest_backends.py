"""Rank-test backend benchmark: modular vs. batched vs. the loop reference.

Workload: the combined divide-and-conquer run (Algorithm 3) on the yeast
Network I small variant with a ``q_sub = 5`` tail partition — the
configuration the accelerated engines target, where the ``2^q_sub``
subproblems repeatedly test overlapping supports of the same reduced
stoichiometry and the shared rank memo turns that redundancy into hits.

Reports the rank-test phase time (``t_rank_test`` in ``RunStats``) for
all three backends and writes a machine-readable ``BENCH_ranktest.json``
artifact next to the text reports under ``benchmarks/out/``.  Two
acceptance bars are asserted: the batched engine's >= 3x over the loop,
and the modular engine's >= 1.5x over batched on the *dominant* iteration
(the elimination position where batched spends the most rank-test time —
the spot the residue-field kernel and prefix reuse were built for).
Repetitions come from ``REPRO_BENCH_REPS`` (default 3; CI's smoke job
sets 1); each backend's time is the best over repetitions, which is the
standard guard against scheduler noise on shared runners.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bench.tables import Table
from repro.config import AlgorithmOptions
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions
from repro.efm.api import compute_efms
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

Q_SUB = 5
SPEEDUP_TARGET = 3.0
MODULAR_SPEEDUP_TARGET = 1.5
BACKENDS = ("loop", "batched", "modular")
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))


def _canonical(rows: np.ndarray) -> np.ndarray:
    """Unit max-norm scale + lexicographic sort, for order/scale-free
    EFM-set comparison (mirrors the test suite's helper)."""
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    if rows.shape[0] == 0:
        return rows
    scale = np.abs(rows).max(axis=1, keepdims=True)
    scale[scale == 0] = 1.0
    keys = np.round(rows / scale, 9)
    return keys[np.lexsort(keys.T[::-1])]


@pytest.fixture(scope="module")
def backend_runs():
    reduced = compress_network(yeast_1_small()).reduced
    partition = select_partition_reactions(
        reduced, Q_SUB, method="tail", options=AlgorithmOptions()
    )
    out = {"partition": partition, "reduced": reduced}
    for backend in BACKENDS:
        options = AlgorithmOptions(rank_backend=backend)
        best = None
        for _ in range(REPS):
            run = combined_parallel(reduced, partition, 1, options=options)
            t_rank = sum(
                s.stats.t_rank_test for s in run.subsets if s.stats is not None
            )
            if best is None or t_rank < best[1]:
                best = (run, t_rank)
        out[backend] = best
    return out


def _stat_sum(run, attr: str) -> int:
    return sum(
        getattr(s.stats, attr) for s in run.subsets if s.stats is not None
    )


def _per_position_t_rank(run) -> dict[int, float]:
    """Rank-test seconds summed per elimination position across all
    subproblems — the per-iteration profile the dominant-iteration bar
    is measured on."""
    acc: dict[int, float] = {}
    for s in run.subsets:
        if s.stats is None:
            continue
        for it in s.stats.iterations:
            acc[it.position] = acc.get(it.position, 0.0) + it.t_rank_test
    return acc


def _dominant_position(backend_runs) -> tuple[int, float, float]:
    """(position, t_batched, t_modular) at batched's costliest position."""
    batched_run, _ = backend_runs["batched"]
    modular_run, _ = backend_runs["modular"]
    by_batched = _per_position_t_rank(batched_run)
    by_modular = _per_position_t_rank(modular_run)
    pos = max(by_batched, key=by_batched.get)
    return pos, by_batched[pos], by_modular.get(pos, 0.0)


def test_backends_same_efm_set(backend_runs):
    loop_run, _ = backend_runs["loop"]
    assert loop_run.n_efms == 530
    ca = _canonical(loop_run.efms())
    for backend in ("batched", "modular"):
        run, _ = backend_runs[backend]
        assert run.n_efms == 530, backend
        cb = _canonical(run.efms())
        assert ca.shape == cb.shape, backend
        assert np.allclose(ca, cb, atol=1e-7), backend


def test_ranktest_backends_artifact(backend_runs, write_artifact):
    loop_run, t_loop = backend_runs["loop"]
    batched_run, t_batched = backend_runs["batched"]
    modular_run, t_modular = backend_runs["modular"]
    speedup = t_loop / t_batched
    modular_speedup = t_batched / t_modular
    dom_pos, dom_batched, dom_modular = _dominant_position(backend_runs)
    dom_speedup = dom_batched / dom_modular if dom_modular else float("inf")

    table = Table(
        title=(
            "BENCH — rank-test backends "
            f"(yeast-I-small, combined, q_sub={Q_SUB}, best of {REPS})"
        ),
        columns=[
            "backend", "# EFM", "rank tests", "t_rank_test (s)",
            "cache hits", "batches", "prefix cols", "fallbacks",
        ],
    )
    table.add_row(
        "loop", loop_run.n_efms, _stat_sum(loop_run, "total_rank_tests"),
        round(t_loop, 4), 0, 0, 0, 0,
    )
    table.add_row(
        "batched", batched_run.n_efms,
        _stat_sum(batched_run, "total_rank_tests"), round(t_batched, 4),
        _stat_sum(batched_run, "total_rank_cache_hits"),
        _stat_sum(batched_run, "total_rank_batches"), 0, 0,
    )
    table.add_row(
        "modular", modular_run.n_efms,
        _stat_sum(modular_run, "total_rank_tests"), round(t_modular, 4),
        _stat_sum(modular_run, "total_rank_cache_hits"),
        _stat_sum(modular_run, "total_rank_batches"),
        _stat_sum(modular_run, "total_prefix_reused_cols"),
        _stat_sum(modular_run, "total_rank_fallback"),
    )
    write_artifact("ranktest_backends.txt", table.render())

    payload = {
        "benchmark": "ranktest_backends",
        "network": "yeast-I-small",
        "workload": {
            "method": "combined",
            "q_sub": Q_SUB,
            "partition": list(backend_runs["partition"]),
            "repetitions": REPS,
            "aggregation": "best",
        },
        "loop": {
            "t_rank_test": t_loop,
            "n_efms": loop_run.n_efms,
            "rank_tests": _stat_sum(loop_run, "total_rank_tests"),
        },
        "batched": {
            "t_rank_test": t_batched,
            "n_efms": batched_run.n_efms,
            "rank_tests": _stat_sum(batched_run, "total_rank_tests"),
            "cache_hits": _stat_sum(batched_run, "total_rank_cache_hits"),
            "svd_batches": _stat_sum(batched_run, "total_rank_batches"),
        },
        "modular": {
            "t_rank_test": t_modular,
            "n_efms": modular_run.n_efms,
            "rank_tests": _stat_sum(modular_run, "total_rank_tests"),
            "cache_hits": _stat_sum(modular_run, "total_rank_cache_hits"),
            "kernel_batches": _stat_sum(modular_run, "total_rank_batches"),
            "modular_ranks": _stat_sum(modular_run, "total_rank_modular"),
            "prefix_reused_cols": _stat_sum(
                modular_run, "total_prefix_reused_cols"
            ),
            "fallbacks": _stat_sum(modular_run, "total_rank_fallback"),
        },
        "speedup": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "meets_target": bool(speedup >= SPEEDUP_TARGET),
        "modular_speedup_total": modular_speedup,
        "dominant_iteration": {
            "position": dom_pos,
            "t_batched": dom_batched,
            "t_modular": dom_modular,
            "speedup": dom_speedup,
        },
        "modular_speedup_target": MODULAR_SPEEDUP_TARGET,
        "modular_meets_target": bool(dom_speedup >= MODULAR_SPEEDUP_TARGET),
    }
    write_artifact("BENCH_ranktest.json", json.dumps(payload, indent=2))


def test_ranktest_speedup_target(backend_runs):
    """The batched engine's original acceptance bar: >= 3x over the loop."""
    _, t_loop = backend_runs["loop"]
    _, t_batched = backend_runs["batched"]
    assert t_loop / t_batched >= SPEEDUP_TARGET, (
        f"rank-test speedup {t_loop / t_batched:.2f}x below "
        f"{SPEEDUP_TARGET}x target (loop {t_loop:.4f}s vs "
        f"batched {t_batched:.4f}s)"
    )


def test_modular_dominant_iteration_speedup(backend_runs):
    """The modular engine's acceptance bar: >= 1.5x over batched on the
    dominant iteration — batched's costliest elimination position."""
    dom_pos, dom_batched, dom_modular = _dominant_position(backend_runs)
    assert dom_modular > 0.0
    ratio = dom_batched / dom_modular
    assert ratio >= MODULAR_SPEEDUP_TARGET, (
        f"modular dominant-iteration speedup {ratio:.2f}x below "
        f"{MODULAR_SPEEDUP_TARGET}x target at position {dom_pos} "
        f"(batched {dom_batched:.4f}s vs modular {dom_modular:.4f}s)"
    )


def test_modular_prefix_reuse_engaged(backend_runs):
    """The elimination-prefix layer must actually fire on this workload,
    and the residue kernel must certify everything without SVD rescue."""
    modular_run, _ = backend_runs["modular"]
    assert _stat_sum(modular_run, "total_prefix_reused_cols") > 0
    assert _stat_sum(modular_run, "total_rank_modular") > 0
    assert _stat_sum(modular_run, "total_rank_fallback") == 0


def test_cache_hits_across_subproblems(backend_runs):
    """Algorithm 3's redundancy must become memo hits — for both
    memo-composing backends."""
    for backend in ("batched", "modular"):
        run, _ = backend_runs[backend]
        hits = _stat_sum(run, "total_rank_cache_hits")
        tested = _stat_sum(run, "total_rank_tests")
        assert hits > tested // 2, backend  # majority served from the memo


def test_medium_registry_equivalence():
    """Backend equivalence at the medium registry scale (the small
    variants and toy run the same assertion in the tier-1 parity suite;
    yeast-II-medium is out of pure-Python benchmark reach)."""
    from repro.models import variants

    net = variants.yeast_1_medium()
    results = {
        be: compute_efms(net, options=AlgorithmOptions(rank_backend=be))
        for be in BACKENDS
    }
    for be in ("batched", "modular"):
        assert results["loop"].n_efms == results[be].n_efms, be
        assert results["loop"].same_modes_as(results[be]), be
