"""E-EXT2 — §IV.C: targeted enumeration via Proposition 1.

"To enumerate all the elementary modes having non-zero flux for a
specific reaction is NP-hard" — still, a single divide-and-conquer
subproblem answers the question without full enumeration, and for
*avoiding* queries (knockout sets) the candidate savings are large
because the deleted column shrinks every iteration.
"""

import pytest

from repro.bench.tables import Table
from repro.efm.api import compute_efms
from repro.efm.targeted import efms_avoiding, efms_through
from repro.models.variants import yeast_1_small

TARGETS = ("R66", "R40", "R13r", "R98")


@pytest.fixture(scope="module")
def query_runs():
    net = yeast_1_small()
    full = compute_efms(net, method="parallel", n_ranks=1)
    rows = []
    for target in TARGETS:
        through = efms_through(net, target)
        avoiding = efms_avoiding(net, target)
        rows.append((target, through, avoiding))
    return net, full, rows


def test_targeted_artifact(query_runs, write_artifact):
    _, full, rows = query_runs
    assert full.stats is not None
    total = full.stats.total_candidates
    table = Table(
        title="E-EXT2 — targeted queries vs full enumeration (yeast-I-small)",
        columns=["target", "# through", "cand (through)", "# avoiding",
                 "cand (avoiding)", "full cand"],
    )
    for target, through, avoiding in rows:
        table.add_row(
            target, through.n_efms, through.meta["candidates"],
            avoiding.n_efms, avoiding.meta["candidates"], total,
        )
    write_artifact("targeted_queries.txt", table.render())


def test_queries_partition_the_full_set(query_runs):
    _, full, rows = query_runs
    for target, through, avoiding in rows:
        assert through.n_efms + avoiding.n_efms == full.n_efms, target
        ref = full.with_active(target)
        assert through.same_modes_as(ref), target


def test_avoiding_queries_save_candidates(query_runs):
    """Deleting the column can never cost more work than the full run, and
    for most targets the saving is dramatic (R13r: ~1400x fewer
    candidates).  A target whose removal leaves the combinatorics intact
    (e.g. R98, a lone antiporter) legitimately saves nothing."""
    _, full, rows = query_runs
    assert full.stats is not None
    total = full.stats.total_candidates
    savings = []
    for target, _through, avoiding in rows:
        assert avoiding.meta["candidates"] <= total, target
        savings.append(total / max(1, avoiding.meta["candidates"]))
    assert max(savings) > 10, savings


def test_through_query_benchmark(benchmark):
    net = yeast_1_small()
    result = benchmark.pedantic(
        lambda: efms_through(net, "R40"), rounds=3, iterations=1
    )
    assert result.n_efms > 0
