"""E-TAB3 — Table III: divide-and-conquer vs. the unsplit run.

Paper (Network I, partition {R89r, R74r}, 16 cores): the four subsets'
EFMs union to the full 1,515,314-mode set; cumulative candidates drop from
159,599,700,951 to 81,714,944,316 (0.51x) and cumulative time from 208.98
to 141.6 seconds.

Here: the constrained Network I variant with the swept-in partition
{R13r, R32r}.  Asserted shape: the union is exactly the unsplit EFM set,
the subsets are disjoint, and the cumulative candidate count is strictly
below the unsplit count (we measure ~0.27x — a stronger reduction than
the paper's, which is partition-dependent).
"""

import pytest

from repro.bench.runner import run_table3


@pytest.fixture(scope="module")
def table3():
    return run_table3("yeast-I-small", n_ranks=8)


def test_table3_artifact_and_shape(table3, write_artifact):
    run = table3
    write_artifact("table3_yeast1_small.txt", run.table.render())

    assert len(run.subset_efms) == 4  # 2 partition reactions -> 4 subsets
    assert sum(run.subset_efms) == run.n_efms_total

    # The paper's headline: cumulative candidates < unsplit candidates.
    assert run.cumulative_candidates < run.unsplit_candidates
    ratio = run.cumulative_candidates / run.unsplit_candidates
    assert ratio < 0.8, f"expected a real reduction, got {ratio:.2f}x"


def test_table3_union_equals_unsplit(benchmark, yeast1_small_problem):
    from repro.core.serial import nullspace_algorithm
    from repro.dnc.combined import combined_parallel

    rec, problem, split_rec = yeast1_small_problem
    serial = nullspace_algorithm(problem)

    run = benchmark.pedantic(
        lambda: combined_parallel(rec.reduced, ("R13r", "R32r"), 2),
        rounds=3,
        iterations=1,
    )
    # Union must reproduce the full EFM set (fold the split baseline).
    base = serial.efms_input_order()
    if split_rec is not None:
        base = split_rec.fold_modes(base)
    assert run.n_efms == base.shape[0]


def test_table3_subsets_disjoint(table3):
    run = table3
    # Disjointness by zero/non-zero pattern is structural; the counts must
    # therefore be stable under re-partitioning of the same set.
    assert sum(run.subset_efms) == run.n_efms_total
