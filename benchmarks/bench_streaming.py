"""Streaming iteration engine benchmark: bounded chunks vs batch.

Workload: the serial Nullspace Algorithm on yeast Network I (small
variant) — the driver where one iteration's whole surviving candidate
set lives on a single node, i.e. exactly the footprint the paper's
Network II run died on (iteration 59/61).  The batch reference
(``iter_streaming="off"``) materializes, deduplicates and rank-tests
every prefilter survivor of an iteration at once; the streaming engine
(``iter_streaming="on"`` with a 128 KiB chunk budget) consumes the same
pair space as bounded chunks, so the measured per-iteration candidate
peak (``IterationStats.candidate_bytes`` — for streaming the running
max of accepted set + dedup index + live chunk) collapses to the
accepted set plus one chunk transient.

Measured per pipeline (deferred and eager), streaming off vs on:

* candidate bytes at the *dominant* iteration (the batch run's
  candidate-peak iteration — the memory-wall row) and the whole-run
  maximum;
* per-run wall time (best of ``REPRO_BENCH_REPS``), asserted under a
  noise-safe no-regression ceiling: chunked dispatch costs a bounded
  constant factor at this toy scale (observed 1.3x-1.6x — the yeast
  iterations are small enough that per-chunk Python overhead shows;
  the absolute cost is milliseconds), and the ceiling guards against
  anything worse than that known overhead band;
* the EFM set, which must be bit-identical between the two modes.

The byte ratios are deterministic properties of the accounting, so the
dominant-iteration reduction is asserted at the design target (>= 2x;
observed ~5.1x deferred / ~6.9x eager at a 128 KiB budget, with the
whole-run candidate peak down ~2.5x / ~3.2x).  Writes
``BENCH_streaming.json`` plus a text table under ``benchmarks/out/``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bench.tables import Table
from repro.config import AlgorithmOptions
from repro.core.serial import nullspace_algorithm
from repro.efm.api import build_problem_with_split
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))
CHUNK_BYTES = 128 << 10
#: Acceptance targets.  The dominant-iteration candidate-peak reduction
#: is a deterministic accounting property; the wall ceiling is the
#: noise-safe bound on streaming's per-chunk dispatch overhead.
DOMINANT_PEAK_RATIO_TARGET = 2.0
MAX_PEAK_RATIO_TARGET = 2.0
WALL_RATIO_CEILING = 2.0


def _run(problem, options):
    best = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        res = nullspace_algorithm(problem, options=options)
        wall = time.perf_counter() - t0
        if best is None or wall < best[1]:
            best = (res, wall)
    return best


@pytest.fixture(scope="module")
def streaming_runs():
    rec = compress_network(yeast_1_small())
    problem, _ = build_problem_with_split(rec.reduced)
    out = {}
    for pipeline in ("deferred", "eager"):
        for streaming in ("off", "on"):
            options = AlgorithmOptions(
                candidate_pipeline=pipeline,
                iter_streaming=streaming,
                iter_chunk_bytes=CHUNK_BYTES if streaming == "on" else "auto",
            )
            out[(pipeline, streaming)] = _run(problem, options)
    return out


def _metrics(res) -> dict:
    its = res.stats.iterations
    dominant = max(range(len(its)), key=lambda i: its[i].candidate_bytes)
    return {
        "dominant_position": its[dominant].position,
        "dominant_candidate_bytes": its[dominant].candidate_bytes,
        "max_candidate_bytes": max(it.candidate_bytes for it in its),
        "n_chunks": res.stats.total_stream_chunks,
        "peak_chunk_bytes": res.stats.peak_stream_chunk_bytes,
        "n_dedup_probes": res.stats.total_dedup_probes,
        "n_modes_split": res.modes.n_modes,
    }


@pytest.mark.parametrize("pipeline", ["deferred", "eager"])
def test_streaming_bit_identical(streaming_runs, pipeline):
    off = streaming_runs[(pipeline, "off")][0]
    on = streaming_runs[(pipeline, "on")][0]
    # 532 split modes here: the serial problem enumerates the
    # reversible-split network; recombination to the canonical 530-EFM
    # set happens in compute_efms (pinned by test_streaming_parity).
    assert off.modes.n_modes == on.modes.n_modes == 532
    assert np.array_equal(off.efms_input_order(), on.efms_input_order())


def test_streaming_benchmark_artifacts(streaming_runs, write_artifact):
    table = Table(
        title=(
            f"Streaming iteration engine, yeast-I-small serial, "
            f"chunk budget {CHUNK_BYTES} B"
        ),
        columns=[
            "pipeline",
            "streaming",
            "dominant cand [B]",
            "max cand [B]",
            "chunks",
            "wall [s]",
            "EFMs",
        ],
    )
    payload: dict = {
        "network": "yeast-I-small",
        "driver": "serial",
        "chunk_bytes": CHUNK_BYTES,
        "reps": REPS,
        "targets": {
            "dominant_candidate_bytes_ratio": DOMINANT_PEAK_RATIO_TARGET,
            "max_candidate_bytes_ratio": MAX_PEAK_RATIO_TARGET,
            "wall_ratio_ceiling": WALL_RATIO_CEILING,
        },
    }
    ratios = {}
    for pipeline in ("deferred", "eager"):
        row = {}
        for streaming in ("off", "on"):
            res, wall = streaming_runs[(pipeline, streaming)]
            m = _metrics(res)
            m["wall_s"] = round(wall, 4)
            row[streaming] = m
            table.add_row(
                pipeline,
                streaming,
                m["dominant_candidate_bytes"],
                m["max_candidate_bytes"],
                m["n_chunks"],
                f"{wall:.3f}",
                m["n_modes_split"],
            )
        # The dominant iteration is the batch run's candidate-peak row;
        # iterations align 1:1 between modes, so compare it in place.
        pos = row["off"]["dominant_position"]
        on_its = streaming_runs[(pipeline, "on")][0].stats.iterations
        on_at_dominant = next(
            it.candidate_bytes for it in on_its if it.position == pos
        )
        dom_ratio = row["off"]["dominant_candidate_bytes"] / max(1, on_at_dominant)
        peak_ratio = row["off"]["max_candidate_bytes"] / max(
            1, row["on"]["max_candidate_bytes"]
        )
        wall_ratio = row["on"]["wall_s"] / row["off"]["wall_s"]
        ratios[pipeline] = (dom_ratio, peak_ratio, wall_ratio)
        table.add_row(
            pipeline,
            "ratio",
            f"{dom_ratio:.1f}x",
            f"{peak_ratio:.1f}x",
            "-",
            f"{wall_ratio:.2f}x",
            "=",
        )
        payload[pipeline] = {
            "off": row["off"],
            "on": row["on"],
            "dominant_candidate_bytes_ratio": round(dom_ratio, 3),
            "max_candidate_bytes_ratio": round(peak_ratio, 3),
            "wall_ratio": round(wall_ratio, 3),
        }
    write_artifact("BENCH_streaming.txt", table.render())
    write_artifact("BENCH_streaming.json", json.dumps(payload, indent=2))

    for pipeline, (dom_ratio, peak_ratio, wall_ratio) in ratios.items():
        assert dom_ratio >= DOMINANT_PEAK_RATIO_TARGET, (
            f"{pipeline}: dominant-iteration candidate bytes ratio "
            f"{dom_ratio:.2f} below {DOMINANT_PEAK_RATIO_TARGET}"
        )
        assert peak_ratio >= MAX_PEAK_RATIO_TARGET, (
            f"{pipeline}: whole-run candidate peak ratio "
            f"{peak_ratio:.2f} below {MAX_PEAK_RATIO_TARGET}"
        )
        assert wall_ratio <= WALL_RATIO_CEILING, (
            f"{pipeline}: streaming wall {wall_ratio:.2f}x batch exceeds "
            f"the no-regression ceiling {WALL_RATIO_CEILING}"
        )
