"""E-MICRO — microbenchmarks of the hot kernels.

Times the four inner operations whose rates parameterize the platform
model (candidate pair generation, the algebraic rank test, packed-support
deduplication, network compression + kernel construction), providing the
measured host-side analogue of the calibrated Calhoun/Blue Gene/P rates.
"""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.candidates import full_range, generate_candidates
from repro.core.ranktest import rank_test
from repro.core.state import ModeMatrix
from repro.core.stats import IterationStats
from repro.linalg import bitset
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network


@pytest.fixture(scope="module")
def medium_modes(yeast1_small_problem):
    """A realistic mid-run mode matrix, stopped at the unprocessed row
    with the largest pos x neg pair count."""
    from repro.core.serial import nullspace_algorithm

    _, problem, _ = yeast1_small_problem
    mid = (problem.first_row + problem.q) // 2
    res = nullspace_algorithm(problem, stop_row=mid)
    best_k, best_pairs = mid, -1
    for k in range(mid, problem.q):
        col = res.modes.column(k)
        pairs = int((col > 0).sum()) * int((col < 0).sum())
        if pairs > best_pairs:
            best_k, best_pairs = k, pairs
    assert best_pairs > 0, "workload has no pair-generating row after mid"
    return problem, best_k, res.modes


def test_bench_pair_generation(benchmark, medium_modes):
    problem, k, modes = medium_modes
    col = modes.column(k)
    pos = np.nonzero(col > 0)[0]
    neg = np.nonzero(col < 0)[0]
    n_pairs = pos.size * neg.size
    assert n_pairs > 0

    def gen():
        stats = IterationStats(position=k, reaction="x", reversible=False)
        return generate_candidates(
            modes, k, pos, neg, full_range(n_pairs), problem.rank,
            AlgorithmOptions(), stats,
        )

    cand = benchmark(gen)
    assert cand.n_modes >= 0


def test_bench_rank_test(benchmark, medium_modes):
    problem, k, modes = medium_modes
    col = modes.column(k)
    pos = np.nonzero(col > 0)[0]
    neg = np.nonzero(col < 0)[0]
    stats = IterationStats(position=k, reaction="x", reversible=False)
    cand = generate_candidates(
        modes, k, pos, neg, full_range(pos.size * neg.size), problem.rank,
        AlgorithmOptions(), stats,
    ).dedup()
    assert cand.n_modes > 0
    accept = benchmark(
        lambda: rank_test(cand, problem.n_perm, problem.rank)
    )
    assert accept.shape == (cand.n_modes,)


def test_bench_bitset_dedup(benchmark):
    rng = np.random.default_rng(0)
    mask = rng.random((64, 20_000)) < 0.2
    words = bitset.pack_supports(mask)
    uniq, _ = benchmark(lambda: bitset.unique_rows(words))
    assert uniq.shape[0] <= words.shape[0]


def test_bench_union_popcount_prefilter(benchmark):
    rng = np.random.default_rng(1)
    mask = rng.random((64, 2_000)) < 0.2
    words = bitset.pack_supports(mask)
    i = rng.integers(0, 2_000, size=100_000)
    j = rng.integers(0, 2_000, size=100_000)
    counts = benchmark(lambda: bitset.union_popcount(words[i], words[j]))
    assert counts.shape == (100_000,)


def test_bench_compression(benchmark):
    net = yeast_1_small()
    rec = benchmark(lambda: compress_network(net))
    assert rec.reduced.n_reactions < net.n_reactions


def test_bench_kernel_construction(benchmark):
    from repro.efm.api import build_problem_with_split

    rec = compress_network(yeast_1_small())
    problem, _ = benchmark(lambda: build_problem_with_split(rec.reduced))
    assert problem.n_free > 0
