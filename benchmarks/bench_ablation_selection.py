"""E-ABL5 — §IV.C future work: automated partition-reaction selection.

"An automated method to select the subset and estimate the approximate
number of elementary modes for a given reaction partition would be
helpful to make the combined parallel Nullspace Algorithm a fully
automated procedure."  This bench compares the three implemented
selection heuristics (tail / balance / probe) against the worst observed
2-reaction partition, by cumulative candidate count.
"""

import itertools
import time

import pytest

from repro.bench.tables import Table
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions
from repro.errors import ReproError


@pytest.fixture(scope="module")
def selection_runs(yeast1_small_problem):
    rec, _problem, _ = yeast1_small_problem
    reduced = rec.reduced
    results = {}
    for method in ("tail", "balance", "probe"):
        t0 = time.perf_counter()
        partition = select_partition_reactions(reduced, 2, method=method)
        select_time = time.perf_counter() - t0
        run = combined_parallel(reduced, partition, 1)
        results[method] = (partition, run, select_time)
    return rec, results


@pytest.fixture(scope="module")
def random_baseline(yeast1_small_problem):
    """Candidate counts of a sample of arbitrary 2-reaction partitions."""
    rec, _problem, _ = yeast1_small_problem
    reduced = rec.reduced
    counts = []
    names = reduced.reaction_names
    for pair in itertools.islice(itertools.combinations(names, 2), 0, 40, 4):
        try:
            run = combined_parallel(reduced, pair, 1)
        except ReproError:
            continue
        counts.append((run.total_candidates, pair))
    return counts


def test_selection_artifact(selection_runs, random_baseline, write_artifact):
    _, results = selection_runs
    table = Table(
        title="E-ABL5 — partition selection heuristics (yeast-I-small, q_sub=2)",
        columns=["method", "partition", "cumulative candidates", "# EFM",
                 "selection cost (s)"],
    )
    for method, (partition, run, select_time) in results.items():
        table.add_row(
            method, " ".join(partition), run.total_candidates,
            run.n_efms, select_time,
        )
    if random_baseline:
        worst = max(random_baseline)
        table.add_footer(
            f"worst sampled arbitrary partition: {worst[1]} -> {worst[0]:,} candidates"
        )
    write_artifact("ablation_selection.txt", table.render())


def test_all_heuristics_preserve_efm_set(selection_runs):
    _, results = selection_runs
    counts = {run.n_efms for _, run, _ in results.values()}
    assert len(counts) == 1


def test_heuristics_beat_worst_arbitrary(selection_runs, random_baseline):
    _, results = selection_runs
    if not random_baseline:
        pytest.skip("no arbitrary partitions completed")
    worst = max(c for c, _ in random_baseline)
    for method, (_, run, _) in results.items():
        assert run.total_candidates <= worst, method


def test_balance_selection_benchmark(benchmark, yeast1_small_problem):
    rec, _problem, _ = yeast1_small_problem
    partition = benchmark.pedantic(
        lambda: select_partition_reactions(rec.reduced, 2, method="balance"),
        rounds=3,
        iterations=1,
    )
    assert len(partition) == 2
