"""Shared fixtures for the benchmark suite.

Every benchmark writes its rendered paper-style table to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can reference concrete
artifacts.  Workloads are the registry's ``*-small`` yeast variants —
the identical code path as the paper's Networks I/II at a scale pure
Python finishes in seconds (see DESIGN.md §2 for the substitution
rationale).
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def _write_artifact(name: str, content: str) -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(content + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def write_artifact():
    """Callable fixture: persist a rendered table under benchmarks/out/."""
    return _write_artifact


@pytest.fixture(scope="session")
def yeast1_small_problem():
    from repro.efm.api import build_problem_with_split
    from repro.models.variants import yeast_1_small
    from repro.network.compression import compress_network

    rec = compress_network(yeast_1_small())
    problem, split_rec = build_problem_with_split(rec.reduced)
    return rec, problem, split_rec
