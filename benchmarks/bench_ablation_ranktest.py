"""E-ABL3 — acceptance-test ablation: algebraic rank test [18] vs. the
bit-pattern (combinatorial adjacency) test of efmtool [19].

The paper's implementation uses the rank test; efmtool's headline
optimization is the combinatorial test.  Both compute identical EFM sets;
the combinatorial test trades per-candidate SVDs for per-pair bitset
scans (and requires a fully irreversible system — compute_efms splits
reversibles automatically for it).
"""

import time

import pytest

from repro.bench.tables import Table
from repro.config import AlgorithmOptions
from repro.efm.api import compute_efms
from repro.models.variants import yeast_1_small


@pytest.fixture(scope="module")
def runs():
    net = yeast_1_small()
    out = {}
    for acceptance in ("rank", "bittree"):
        options = AlgorithmOptions(acceptance=acceptance)
        t0 = time.perf_counter()
        result = compute_efms(net, options=options)
        out[acceptance] = (result, time.perf_counter() - t0)
    return out


def test_ranktest_ablation_artifact(runs, write_artifact):
    table = Table(
        title="E-ABL3 — acceptance test ablation (yeast-I-small)",
        columns=["acceptance", "# EFM", "total candidates", "host time (s)"],
    )
    for name, (result, dt) in runs.items():
        cand = result.stats.total_candidates if result.stats else 0
        table.add_row(name, result.n_efms, cand, dt)
    write_artifact("ablation_ranktest.txt", table.render())


def test_same_efm_set(runs):
    rank_result = runs["rank"][0]
    tree_result = runs["bittree"][0]
    assert rank_result.same_modes_as(tree_result)


def test_bittree_runs_zero_rank_tests(runs):
    """The combinatorial path must not fall back to SVDs."""
    tree_result = runs["bittree"][0]
    assert tree_result.stats is not None
    assert tree_result.stats.total_rank_tests == 0


def test_rank_acceptance_benchmark(benchmark):
    net = yeast_1_small()
    result = benchmark.pedantic(
        lambda: compute_efms(net, options=AlgorithmOptions(acceptance="rank")),
        rounds=3, iterations=1,
    )
    assert result.n_efms == 530


def test_bittree_acceptance_benchmark(benchmark):
    net = yeast_1_small()
    result = benchmark.pedantic(
        lambda: compute_efms(net, options=AlgorithmOptions(acceptance="bittree")),
        rounds=3, iterations=1,
    )
    assert result.n_efms == 530
