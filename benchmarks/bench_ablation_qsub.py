"""E-ABL1 — §IV.A: "Computation time is proportional to the number of
generated intermediate elementary modes", and divide-and-conquer "usually
leads to the decrease of the cumulative number of intermediate modes".

Sweeps the partition size q_sub over the same workload and records the
cumulative candidate count and measured time per split; also verifies the
proportionality claim by correlating per-subset candidates with per-subset
host time.
"""

import time

import pytest

from repro.bench.tables import Table
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions

QSUBS = (1, 2, 3)


@pytest.fixture(scope="module")
def sweep(yeast1_small_problem):
    rec, problem, _split = yeast1_small_problem
    rows = []
    for q_sub in QSUBS:
        partition = select_partition_reactions(rec.reduced, q_sub, method="balance")
        t0 = time.perf_counter()
        run = combined_parallel(rec.reduced, partition, 1)
        dt = time.perf_counter() - t0
        rows.append((q_sub, partition, run, dt))
    return rec, rows


def test_qsub_sweep_artifact(sweep, write_artifact):
    rec, rows = sweep
    table = Table(
        title="E-ABL1 — candidate count and time vs. partition size (yeast-I-small)",
        columns=["q_sub", "partition", "# subsets", "# EFM",
                 "cumulative candidates", "host time (s)"],
    )
    for q_sub, partition, run, dt in rows:
        table.add_row(
            q_sub, " ".join(partition), len(run.subsets), run.n_efms,
            run.total_candidates, dt,
        )
    write_artifact("ablation_qsub.txt", table.render())

    # All splits compute the same EFM set.
    assert len({run.n_efms for _, _, run, _ in rows}) == 1


def test_time_tracks_candidates(sweep):
    """Per-subset host time correlates strongly with per-subset candidate
    count — the paper's proportionality observation."""
    import numpy as np

    _, rows = sweep
    cands, times = [], []
    for _, _, run, _ in rows:
        for s in run.subsets:
            if s.stats is not None and s.n_candidates > 0:
                cands.append(s.n_candidates)
                times.append(s.stats.t_gen_cand + s.stats.t_rank_test)
    assert len(cands) >= 6
    r = np.corrcoef(np.log10(cands), np.log10(np.maximum(times, 1e-7)))[0, 1]
    assert r > 0.6, f"candidates/time correlation too weak: {r:.2f}"


def test_best_split_reduces_candidates(sweep, benchmark, yeast1_small_problem):
    rec, rows = sweep
    _, problem, _ = yeast1_small_problem
    from repro.parallel.combinatorial import combinatorial_parallel

    unsplit = benchmark.pedantic(
        lambda: combinatorial_parallel(problem, 1), rounds=1, iterations=1
    )
    best = min(run.total_candidates for _, _, run, _ in rows)
    assert best < unsplit.stats.total_candidates
