"""Tile-pruned pair enumeration benchmark: zone maps on vs off.

Workload: Algorithm 3 (combined divide-and-conquer) on yeast Network I
(small variant) with a ``q_sub = 5`` probe-selected partition, one rank
per subproblem, the "tiled" pair strategy in both arms.  The probe
selection concentrates the surviving pair volume into a few large
iterations — the regime the zone maps target (the tail/balance
selections spread work across many sub-gate iterations where pruning
never engages by design).

Arms differ only in ``options.pair_pruning`` (``"none"`` vs
``"tiles"``); the partition is computed once and shared, so both arms
solve the identical subproblem sequence and, because tile pruning is
skip-only and order-preserving, produce bit-identical EFMs (asserted
here and property-tested in ``tests/core/test_pair_pruning_parity.py``).

Aggregation: each arm runs ``REPRO_BENCH_REPS`` times and every
iteration keeps its **minimum** ``t_gen_cand`` across reps — the
standard scheduler-noise rejection for the sub-millisecond per-iteration
windows of this toy scale (cf. ``bench_candidate_pipeline``).

Asserted metrics:

* **engaged-iteration gen-time ratio** (the headline): iteration-total
  ``t_gen_cand`` over the iterations where pruning engages (the pruning
  arm skipped pairs there — pair spaces at or above the
  ``MIN_PRUNE_PAIRS`` gate), none/tiles.  Floor 1.05, design target
  ~1.3x.  This is where the optimization acts; measured runs land in
  1.12x–1.3x depending on host load.
* **full-run gen-time ratio** (reported, no-regression floor): summed
  ``t_gen_cand`` over *all* iterations.  On yeast-I-small ~680 of the
  iterations are tiny (<=16-pair spaces) where generation cost is pure
  per-call dispatch overhead, identical in both arms — they dilute the
  engaged-iteration win to ~1.01x–1.04x total, so the total is asserted
  only against a noise-safe no-regression floor.
* ``n_pairs_skipped > 0`` and nonzero pruned tiles in the pruning arm;
* bit-identical EFM sets (and the paper's 530 EFM count).

Writes ``BENCH_pairprune.json`` plus a text table under
``benchmarks/out/``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bench.tables import Table
from repro.config import AlgorithmOptions
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

Q_SUB = 5
N_RANKS = 1
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))
#: Floor/target for none/tiles t_gen_cand over pruning-engaged iterations.
ENGAGED_RATIO_FLOOR = 1.05
ENGAGED_RATIO_TARGET = 1.3
#: Noise-safe no-regression floor for the full-run t_gen_cand ratio
#: (dispatch-dominated tiny iterations dilute the win; see docstring).
TOTAL_RATIO_FLOOR = 0.90


def _iteration_stats(run):
    """Flatten per-iteration stats across subproblems in a fixed order."""
    return [
        it
        for s in run.subsets
        if s.stats is not None
        for it in s.stats.iterations
    ]


@pytest.fixture(scope="module")
def pruning_runs():
    reduced = compress_network(yeast_1_small()).reduced
    partition = select_partition_reactions(
        reduced, Q_SUB, method="probe", options=AlgorithmOptions()
    )
    out: dict = {"partition": partition}
    for pruning in ("none", "tiles"):
        options = AlgorithmOptions(pair_pruning=pruning)
        run = None
        t_gen_min = None
        wall = float("inf")
        for _ in range(REPS):
            t0 = time.perf_counter()
            r = combined_parallel(
                reduced, partition, N_RANKS,
                options=options, pair_strategy="tiled",
            )
            wall = min(wall, time.perf_counter() - t0)
            t = np.array([it.t_gen_cand for it in _iteration_stats(r)])
            t_gen_min = t if t_gen_min is None else np.minimum(t_gen_min, t)
            run = r
        out[pruning] = (run, t_gen_min, wall)
    return out


def test_pruning_arms_bit_identical(pruning_runs):
    none_run = pruning_runs["none"][0]
    tiles_run = pruning_runs["tiles"][0]
    assert none_run.n_efms == tiles_run.n_efms == 530
    assert np.array_equal(none_run.efms(), tiles_run.efms())


def test_pair_pruning_benchmark_artifacts(pruning_runs, write_artifact):
    none_run, t_none, wall_none = pruning_runs["none"]
    tiles_run, t_tiles, wall_tiles = pruning_runs["tiles"]

    its_none = _iteration_stats(none_run)
    its_tiles = _iteration_stats(tiles_run)
    assert len(its_none) == len(its_tiles) == t_none.size

    skipped = np.array([it.n_pairs_skipped for it in its_tiles])
    n_skipped = int(skipped.sum())
    n_tiles_total = sum(it.n_tiles_total for it in its_tiles)
    n_tiles_pruned = sum(it.n_tiles_pruned for it in its_tiles)
    n_pairs_total = sum(it.n_pairs for it in its_tiles)

    engaged = skipped > 0
    gen_none_eng = float(t_none[engaged].sum())
    gen_tiles_eng = float(t_tiles[engaged].sum())
    engaged_ratio = (
        gen_none_eng / gen_tiles_eng if gen_tiles_eng > 0 else float("inf")
    )
    gen_none = float(t_none.sum())
    gen_tiles = float(t_tiles.sum())
    total_ratio = gen_none / gen_tiles if gen_tiles > 0 else float("inf")

    table = Table(
        title=(
            f"Pair pruning, yeast-I-small, q_sub={Q_SUB}, probe partition, "
            f"{N_RANKS} rank/subproblem, tiled strategy"
        ),
        columns=[
            "pruning",
            "gen total [ms]",
            f"gen engaged({int(engaged.sum())}) [ms]",
            "pairs skipped",
            "tiles pruned",
            "EFMs",
        ],
    )
    table.add_row(
        "none", f"{gen_none * 1e3:.3f}", f"{gen_none_eng * 1e3:.3f}",
        0, 0, none_run.n_efms,
    )
    table.add_row(
        "tiles", f"{gen_tiles * 1e3:.3f}", f"{gen_tiles_eng * 1e3:.3f}",
        n_skipped, f"{n_tiles_pruned}/{n_tiles_total}", tiles_run.n_efms,
    )
    table.add_row(
        "ratio", f"{total_ratio:.2f}x", f"{engaged_ratio:.2f}x", "-", "-", "=",
    )
    write_artifact("BENCH_pairprune.txt", table.render())

    payload = {
        "network": "yeast-I-small",
        "q_sub": Q_SUB,
        "n_ranks": N_RANKS,
        "partition_method": "probe",
        "pair_strategy": "tiled",
        "reps": REPS,
        "n_iterations": int(t_none.size),
        "n_iterations_engaged": int(engaged.sum()),
        "none": {
            "t_gen_cand_s": round(gen_none, 5),
            "t_gen_cand_engaged_s": round(gen_none_eng, 5),
            "wall_s": round(wall_none, 4),
            "n_efms": none_run.n_efms,
        },
        "tiles": {
            "t_gen_cand_s": round(gen_tiles, 5),
            "t_gen_cand_engaged_s": round(gen_tiles_eng, 5),
            "wall_s": round(wall_tiles, 4),
            "n_efms": tiles_run.n_efms,
            "n_pairs": n_pairs_total,
            "n_pairs_skipped": n_skipped,
            "n_tiles_total": n_tiles_total,
            "n_tiles_pruned": n_tiles_pruned,
        },
        "t_gen_engaged_ratio": round(engaged_ratio, 3),
        "t_gen_total_ratio": round(total_ratio, 3),
        "targets": {
            "engaged_ratio_floor": ENGAGED_RATIO_FLOOR,
            "engaged_ratio_target": ENGAGED_RATIO_TARGET,
            "total_ratio_floor": TOTAL_RATIO_FLOOR,
        },
        "meets_engaged_target": engaged_ratio >= ENGAGED_RATIO_TARGET,
    }
    write_artifact("BENCH_pairprune.json", json.dumps(payload, indent=2))

    assert engaged.any(), "no iteration engaged the zone maps"
    assert n_skipped > 0
    assert n_tiles_pruned > 0
    assert engaged_ratio >= ENGAGED_RATIO_FLOOR, (
        f"engaged-iteration gen-time ratio {engaged_ratio:.3f} below the "
        f"floor {ENGAGED_RATIO_FLOOR} (design target {ENGAGED_RATIO_TARGET})"
    )
    assert total_ratio >= TOTAL_RATIO_FLOOR, (
        f"full-run gen-time ratio {total_ratio:.3f} below the "
        f"no-regression floor {TOTAL_RATIO_FLOOR}"
    )
