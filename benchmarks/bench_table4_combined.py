"""E-TAB4 — Table IV: the combined algorithm under a memory cap
(Blue Gene/P model).

Paper (Network II, 256 BG/P nodes in SMP mode): Algorithm 2 alone was
"abandoned at the 59th iteration, two iterations before completion" for
memory; the 3-reaction split {R54r, R90r, R60r} left two subsets that
also exceeded memory and were manually refined with a 4th reaction
(R22r), after which all 49,764,544 EFMs completed in 2h57m.

Here: the constrained Network II variant against a calibrated per-rank
capacity.  Asserted shape: (1) Algorithm 2 OOMs in the final iterations,
(2) at least one subset of the initial split needs refinement, (3) the
adaptive refinement completes the full EFM set under the same cap.
"""

import pytest

from repro.bench.runner import run_table4
from repro.efm.api import compute_efms
from repro.models.variants import yeast_2_small


@pytest.fixture(scope="module")
def table4():
    return run_table4("yeast-II-small", n_ranks=2, capacity_fraction=0.7)


def test_table4_artifact_and_story(table4, write_artifact):
    run = table4
    write_artifact("table4_yeast2_small.txt", run.table.render())

    # (1) Algorithm 2 alone dies near the end, like the paper's 59/61.
    assert run.alg2_oom_iteration is not None
    assert run.alg2_oom_iteration >= run.alg2_total_iterations - 3

    # (2) the initial split was insufficient -> adaptive refinements fired.
    assert run.refinement_count >= 1

    # (3) the refined run completes the entire EFM set.
    reference = compute_efms(yeast_2_small())
    assert run.n_efms_total == reference.n_efms


def test_table4_end_to_end_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run_table4("yeast-II-small", n_ranks=2, capacity_fraction=0.7),
        rounds=1,
        iterations=1,
    )
    assert result.n_efms_total > 0
