"""E-ABL2 — §II.C: row-ordering heuristic ablation.

The paper orders kernel rows by ascending non-zero count with reversible
rows last, "a heuristic proven to often improve the efficiency of the
Nullspace Algorithm".  This bench runs the same workload under the
paper's ordering, natural order, the adversarial most-nonzeros-first
order, and a random order, and compares total generated candidates (the
cost driver) and host time.
"""

import time

import pytest

from repro.bench.tables import Table
from repro.config import AlgorithmOptions
from repro.core.serial import nullspace_algorithm
from repro.efm.api import build_problem_with_split
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

ORDERINGS = ("paper", "natural", "most-nonzeros", "random")


@pytest.fixture(scope="module")
def runs():
    rec = compress_network(yeast_1_small())
    out = {}
    for ordering in ORDERINGS:
        options = AlgorithmOptions(ordering=ordering, ordering_seed=7)
        problem, _ = build_problem_with_split(rec.reduced, options)
        t0 = time.perf_counter()
        res = nullspace_algorithm(problem, options=options)
        out[ordering] = (res, time.perf_counter() - t0)
    return out


def test_ordering_ablation_artifact(runs, write_artifact):
    table = Table(
        title="E-ABL2 — row-ordering heuristic ablation (yeast-I-small)",
        columns=["ordering", "# EFM", "total candidates", "rank tests",
                 "host time (s)"],
    )
    for ordering, (res, dt) in runs.items():
        table.add_row(
            ordering, res.n_efms, res.stats.total_candidates,
            res.stats.total_rank_tests, dt,
        )
    write_artifact("ablation_ordering.txt", table.render())

    # Correctness is ordering-invariant.
    assert len({res.n_efms for res, _ in runs.values()}) == 1


def test_paper_ordering_beats_adversarial(runs):
    paper = runs["paper"][0].stats.total_candidates
    adversarial = runs["most-nonzeros"][0].stats.total_candidates
    assert paper <= adversarial, (
        f"paper ordering generated {paper} candidates vs adversarial "
        f"{adversarial}"
    )


def test_ordering_benchmark(benchmark):
    rec = compress_network(yeast_1_small())
    options = AlgorithmOptions(ordering="paper")
    problem, _ = build_problem_with_split(rec.reduced, options)
    res = benchmark.pedantic(
        lambda: nullspace_algorithm(problem, options=options),
        rounds=3,
        iterations=1,
    )
    assert res.n_efms > 0
