"""E-EXT1 — §V future work #3: graph partitioning as a divide-and-conquer
driver.

Compares graph-cut partition suggestions (Kernighan–Lin bisection of the
reaction graph; cut-straddling reactions as partition candidates) against
the kernel-based heuristics of E-ABL5 on cumulative candidate counts.

Finding: the *least* cut-entangled bridge reactions are the right choice —
they beat both kernel heuristics on the yeast variant — while the naive
hub choice (most cut metabolites) is ~13x worse than anything else,
because pinning a hub to non-zero flux leaves subsets that still carry
the whole problem.
"""

import pytest

from repro.bench.tables import Table
from repro.dnc.combined import combined_parallel
from repro.dnc.graphs import graph_bisection, partition_quality, suggest_partition_from_cut
from repro.dnc.selection import select_partition_reactions


@pytest.fixture(scope="module")
def comparison(yeast1_small_problem):
    rec, _problem, _ = yeast1_small_problem
    reduced = rec.reduced
    rows = {}
    from repro.dnc.graphs import cut_reactions

    a, b = graph_bisection(reduced, seed=0)
    ranked = cut_reactions(reduced, a, b)
    hubs = tuple(sorted(ranked[:2], key=reduced.reaction_index))
    for label, partition in (
        ("graph-cut (bridges)", suggest_partition_from_cut(reduced, 2, seed=0)),
        ("graph-cut (hubs)", hubs),
        ("balance", select_partition_reactions(reduced, 2, method="balance")),
        ("tail", select_partition_reactions(reduced, 2, method="tail")),
    ):
        run = combined_parallel(reduced, partition, 1)
        rows[label] = (partition, run)
    return rec, rows


def test_graph_partition_artifact(comparison, write_artifact):
    rec, rows = comparison
    a, b = graph_bisection(rec.reduced, seed=0)
    quality = partition_quality(rec.reduced, a, b)
    table = Table(
        title="E-EXT1 — graph-cut vs kernel heuristics (yeast-I-small, q_sub=2)",
        columns=["method", "partition", "cumulative candidates", "# EFM"],
    )
    for label, (partition, run) in rows.items():
        table.add_row(label, " ".join(partition), run.total_candidates, run.n_efms)
    table.add_footer(
        f"reaction-graph bisection: balance {quality['balance']:.2f}, "
        f"cut metabolites {int(quality['cut_metabolites'])} "
        f"({quality['cut_fraction']:.0%} of species)"
    )
    write_artifact("graph_partitioning.txt", table.render())


def test_all_partitions_complete(comparison):
    _, rows = comparison
    counts = {run.n_efms for _, run in rows.values()}
    assert len(counts) == 1


def test_bridge_cut_is_competitive(comparison):
    """The bridge-reaction choice must be within 2x of the best kernel
    heuristic — the paper's conjecture that topology carries signal."""
    _, rows = comparison
    graph = rows["graph-cut (bridges)"][1].total_candidates
    best = min(
        run.total_candidates
        for label, (_, run) in rows.items()
        if label != "graph-cut (hubs)"
    )
    assert graph <= 2 * best, (graph, best)


def test_hub_choice_is_clearly_worse(comparison):
    """Document the negative result: the hub choice pays a big penalty."""
    _, rows = comparison
    hubs = rows["graph-cut (hubs)"][1].total_candidates
    bridges = rows["graph-cut (bridges)"][1].total_candidates
    assert hubs > 2 * bridges


def test_graph_suggestion_benchmark(benchmark, yeast1_small_problem):
    rec, _problem, _ = yeast1_small_problem
    partition = benchmark.pedantic(
        lambda: suggest_partition_from_cut(rec.reduced, 2, seed=0),
        rounds=3,
        iterations=1,
    )
    assert len(partition) == 2
