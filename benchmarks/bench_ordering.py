"""E-PERF — dynamic lookahead row selection vs static orderings.

Workload: the combined divide-and-conquer run (Algorithm 3) on the yeast
Network I small variant with a ``q_sub = 5`` tail partition — the
configuration the dynamic :class:`~repro.core.ordering.RowSelector`
targets, where every one of the ``2^q_sub`` subproblems re-decides its
elimination order from its own live mode matrix.

Reports total generated candidates (the paper's cost driver: "computation
time is proportional to the number of generated intermediate elementary
modes"), measured wall time, and candidate-volume-modeled generation
seconds on both of the paper's platforms, for ``ordering`` in dynamic /
paper / natural.  Two acceptance bars are asserted: dynamic must cut
cumulative candidates by >= 1.15x against the static paper order, and
its selection overhead must keep measured wall time within 1.05x of the
paper order's.  The EFM sets must be identical (canonicalized) across
all three.  Repetitions come from ``REPRO_BENCH_REPS`` (default 3; CI's
smoke job sets 1); each ordering's wall time is the best over
repetitions, the standard guard against scheduler noise.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bench.tables import Table
from repro.cluster.platform import PLATFORMS
from repro.config import AlgorithmOptions
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

Q_SUB = 5
CANDIDATE_REDUCTION_TARGET = 1.15
WALL_OVERHEAD_LIMIT = 1.05
ORDERINGS = ("dynamic", "paper", "natural")
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))


def _canonical(rows: np.ndarray) -> np.ndarray:
    """Unit max-norm scale + lexicographic sort, for order/scale-free
    EFM-set comparison (mirrors the test suite's helper)."""
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    if rows.shape[0] == 0:
        return rows
    scale = np.abs(rows).max(axis=1, keepdims=True)
    scale[scale == 0] = 1.0
    keys = np.round(rows / scale, 9)
    return keys[np.lexsort(keys.T[::-1])]


@pytest.fixture(scope="module")
def ordering_runs():
    reduced = compress_network(yeast_1_small()).reduced
    partition = select_partition_reactions(
        reduced, Q_SUB, method="tail", options=AlgorithmOptions()
    )
    out = {"partition": partition, "reduced": reduced}
    # Repetitions are interleaved across orderings (rep-major, not
    # ordering-major) so drifting background load hits every ordering
    # alike instead of biasing whichever ran last.
    for _ in range(REPS):
        for ordering in ORDERINGS:
            options = AlgorithmOptions(ordering=ordering)
            t0 = time.perf_counter()
            run = combined_parallel(reduced, partition, 1, options=options)
            wall = time.perf_counter() - t0
            if ordering not in out or wall < out[ordering][1]:
                out[ordering] = (run, wall)
    return out


def test_orderings_same_efm_set(ordering_runs):
    ref_run, _ = ordering_runs["paper"]
    assert ref_run.n_efms == 530
    ca = _canonical(ref_run.efms())
    for ordering in ("dynamic", "natural"):
        run, _ = ordering_runs[ordering]
        assert run.n_efms == 530, ordering
        cb = _canonical(run.efms())
        assert ca.shape == cb.shape, ordering
        assert np.allclose(ca, cb, atol=1e-7), ordering


def test_ordering_artifact(ordering_runs, write_artifact):
    dynamic_run, wall_dynamic = ordering_runs["dynamic"]
    paper_run, wall_paper = ordering_runs["paper"]

    table = Table(
        title=(
            "BENCH — dynamic row selection "
            f"(yeast-I-small, combined, q_sub={Q_SUB}, best of {REPS})"
        ),
        columns=[
            "ordering", "# EFM", "total candidates", "wall (s)",
            "modeled gen calhoun (s)", "modeled gen bluegene-p (s)",
        ],
    )
    payload = {
        "benchmark": "ordering",
        "network": "yeast-I-small",
        "workload": {
            "method": "combined",
            "q_sub": Q_SUB,
            "partition": list(ordering_runs["partition"]),
            "repetitions": REPS,
            "aggregation": "best",
        },
        "orderings": {},
    }
    for ordering in ORDERINGS:
        run, wall = ordering_runs[ordering]
        modeled = {
            name: spec.t_gen_cand(run.total_candidates)
            for name, spec in PLATFORMS.items()
        }
        table.add_row(
            ordering, run.n_efms, run.total_candidates, round(wall, 4),
            round(modeled["calhoun"], 4), round(modeled["bluegene-p"], 4),
        )
        payload["orderings"][ordering] = {
            "n_efms": run.n_efms,
            "total_candidates": run.total_candidates,
            "wall_s": wall,
            "modeled_gen_s": modeled,
        }
    write_artifact("ordering.txt", table.render())

    reduction = paper_run.total_candidates / dynamic_run.total_candidates
    wall_ratio = wall_dynamic / wall_paper
    payload.update(
        {
            "candidate_reduction": reduction,
            "candidate_reduction_target": CANDIDATE_REDUCTION_TARGET,
            "meets_reduction_target": bool(
                reduction >= CANDIDATE_REDUCTION_TARGET
            ),
            "wall_ratio": wall_ratio,
            "wall_overhead_limit": WALL_OVERHEAD_LIMIT,
            "meets_wall_limit": bool(wall_ratio <= WALL_OVERHEAD_LIMIT),
        }
    )
    write_artifact("BENCH_ordering.json", json.dumps(payload, indent=2))


def test_candidate_reduction_target(ordering_runs):
    """The tentpole's acceptance bar: dynamic selection cuts cumulative
    candidates >= 1.15x against the static paper order."""
    dynamic_run, _ = ordering_runs["dynamic"]
    paper_run, _ = ordering_runs["paper"]
    reduction = paper_run.total_candidates / dynamic_run.total_candidates
    assert reduction >= CANDIDATE_REDUCTION_TARGET, (
        f"candidate reduction {reduction:.3f}x below "
        f"{CANDIDATE_REDUCTION_TARGET}x target (paper "
        f"{paper_run.total_candidates} vs dynamic "
        f"{dynamic_run.total_candidates})"
    )


def test_wall_overhead_within_limit(ordering_runs):
    """Selection overhead bar: dynamic wall time within 1.05x of the
    static paper order's despite re-scoring every iteration."""
    _, wall_dynamic = ordering_runs["dynamic"]
    _, wall_paper = ordering_runs["paper"]
    ratio = wall_dynamic / wall_paper
    assert ratio <= WALL_OVERHEAD_LIMIT, (
        f"dynamic wall overhead {ratio:.3f}x above {WALL_OVERHEAD_LIMIT}x "
        f"limit (dynamic {wall_dynamic:.3f}s vs paper {wall_paper:.3f}s)"
    )


def test_natural_order_is_worse(ordering_runs):
    """Sanity anchor: the unordered baseline generates strictly more
    candidates than either heuristic, so the comparison is meaningful."""
    natural_run, _ = ordering_runs["natural"]
    dynamic_run, _ = ordering_runs["dynamic"]
    paper_run, _ = ordering_runs["paper"]
    assert natural_run.total_candidates > paper_run.total_candidates
    assert natural_run.total_candidates > dynamic_run.total_candidates
