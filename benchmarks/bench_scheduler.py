"""Subproblem-scheduler benchmark: process-pool dispatch vs. the
sequential subset loop.

Workload: Algorithm 3 on yeast Network I (small variant) with a
``q_sub = 4`` tail partition — 16 independent subproblems, the shape the
scheduler exists for.  The inline executor *is* the pre-scheduler
sequential loop (same solve path, same order-insensitive merge), so the
comparison isolates what dispatch buys.

Writes ``BENCH_scheduler.json`` plus a text table under
``benchmarks/out/``.  The speedup assertion only fires on multi-core
hosts: on a single core the pool pays fork overhead for zero parallelism
(the JSON records ``cpu_count`` so readers can interpret the number).
Repetitions come from ``REPRO_BENCH_REPS`` (default 3); each
configuration keeps its best time.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bench.tables import Table
from repro.config import AlgorithmOptions
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

Q_SUB = 4
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))
#: Modest target: dispatch overhead must not eat the second core.
SPEEDUP_TARGET = 1.2


@pytest.fixture(scope="module")
def scheduler_runs():
    reduced = compress_network(yeast_1_small()).reduced
    partition = select_partition_reactions(
        reduced, Q_SUB, method="tail", options=AlgorithmOptions()
    )
    workers = min(4, os.cpu_count() or 1)
    configs = [
        ("inline", {"executor": "inline"}),
        ("process-pool", {"executor": "process-pool", "max_workers": workers}),
    ]
    out: dict = {"partition": partition, "workers": workers}
    for label, kwargs in configs:
        best = None
        for _ in range(REPS):
            t0 = time.perf_counter()
            run = combined_parallel(reduced, partition, 1, **kwargs)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best[1]:
                best = (run, elapsed)
        out[label] = best
    return out


def test_executors_bit_identical(scheduler_runs):
    inline_run, _ = scheduler_runs["inline"]
    pool_run, _ = scheduler_runs["process-pool"]
    assert inline_run.n_efms == pool_run.n_efms == 530
    assert np.array_equal(inline_run.efms(), pool_run.efms())


def test_scheduler_benchmark_artifacts(scheduler_runs, write_artifact):
    inline_run, t_inline = scheduler_runs["inline"]
    pool_run, t_pool = scheduler_runs["process-pool"]
    cpu_count = os.cpu_count() or 1
    workers = scheduler_runs["workers"]
    speedup = t_inline / t_pool if t_pool > 0 else float("inf")

    table = Table(
        title=(
            f"Scheduler dispatch, yeast-I-small, q_sub={Q_SUB} "
            f"({len(inline_run.subsets)} subsets, {cpu_count} cores)"
        ),
        columns=["executor", "workers", "wall [s]", "speedup", "EFMs"],
    )
    table.add_row("inline", 1, f"{t_inline:.2f}", "1.00", inline_run.n_efms)
    table.add_row(
        "process-pool", workers, f"{t_pool:.2f}", f"{speedup:.2f}", pool_run.n_efms
    )
    write_artifact("BENCH_scheduler.txt", table.render())

    payload = {
        "network": "yeast-I-small",
        "q_sub": Q_SUB,
        "n_subsets": len(inline_run.subsets),
        "cpu_count": cpu_count,
        "workers": workers,
        "reps": REPS,
        "t_inline_s": round(t_inline, 4),
        "t_process_pool_s": round(t_pool, 4),
        "speedup": round(speedup, 3),
        "speedup_target": SPEEDUP_TARGET,
        # Only meaningful with real parallel hardware under the pool.
        "meets_target": (speedup >= SPEEDUP_TARGET) if cpu_count >= 2 else None,
        "n_efms": inline_run.n_efms,
        "schedule": inline_run.meta["schedule"],
    }
    write_artifact("BENCH_scheduler.json", json.dumps(payload, indent=2))

    if cpu_count >= 2:
        assert speedup >= SPEEDUP_TARGET, (
            f"process-pool speedup {speedup:.2f} below target "
            f"{SPEEDUP_TARGET} on a {cpu_count}-core host"
        )
