"""E-ABL4 — §IV.B memory scalability: replicated (Algorithm 2) vs. the
column-partitioned variant (the paper's future-work item 1).

"The combinatorial parallel Nullspace Algorithm has the disadvantage that
it requires the storage of the current nullspace matrix in the local
memory across all compute nodes at each step."  The column-partitioned
variant shards the mode matrix and exchanges only the modes *active* in
the current row, so its per-rank peak falls as ranks are added while the
replicated algorithm's per-rank peak stays flat.

The effect needs a workload whose rows are mostly zero (true of genome-
scale networks and of the paper's Network II): the Network II benchmark
variant shows a ~2.5x per-rank reduction at 8 ranks.
"""

import pytest

from repro.bench.tables import Table
from repro.efm.api import build_problem_with_split
from repro.models.variants import yeast_2_small
from repro.network.compression import compress_network
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.distributed import distributed_parallel

RANKS = (1, 4, 8)


@pytest.fixture(scope="module")
def yeast2_problem():
    rec = compress_network(yeast_2_small())
    problem, split_rec = build_problem_with_split(rec.reduced)
    return rec, problem, split_rec


@pytest.fixture(scope="module")
def peaks(yeast2_problem):
    _, problem, _ = yeast2_problem
    # Replicated peak is rank-count invariant: measure once.
    rep_run = combinatorial_parallel(problem, 1)
    rep_peak = max(s.peak_mode_bytes for s in rep_run.rank_stats)
    dist = {p: distributed_parallel(problem, p).peak_rank_bytes for p in RANKS}
    return rep_peak, dist


def test_memory_scaling_artifact(peaks, write_artifact):
    rep_peak, dist = peaks
    table = Table(
        title="E-ABL4 — peak per-rank mode storage (bytes), yeast-II-small",
        columns=["ranks", "replicated (Alg. 2)", "column-partitioned",
                 "reduction"],
    )
    for p in RANKS:
        table.add_row(p, rep_peak, dist[p], f"{rep_peak / dist[p]:.2f}x")
    write_artifact("memory_scaling.txt", table.render())


def test_partitioned_peak_shrinks_with_ranks(peaks):
    _, dist = peaks
    assert dist[8] < dist[4] < dist[1]


def test_partitioned_beats_replicated_at_scale(peaks):
    rep_peak, dist = peaks
    assert dist[8] < 0.6 * rep_peak


def test_distributed_benchmark(benchmark, yeast2_problem):
    _, problem, _ = yeast2_problem
    run = benchmark.pedantic(
        lambda: distributed_parallel(problem, 4), rounds=1, iterations=1
    )
    assert run.n_efms > 0
