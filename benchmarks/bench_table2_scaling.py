"""E-TAB2 — Table II: combinatorial parallel Algorithm 2 strong scaling.

Paper (Network I, Calhoun, 1→64 cores): generation time falls near-
linearly with cores (2744.76 s → 46.83 s), rank-test time likewise,
communicate and merge grow slowly, candidate count (159,599,700,951) and
EFM count (1,515,314) are invariant.

Here: the constrained Network I variant runs at 1→16 simulated ranks; the
measured candidate counts feed the calibrated Calhoun model.  Asserted
shape: candidate/EFM invariance, monotone modeled generation time, growing
communicate time.
"""

import pytest

from repro.bench.runner import run_table2

CORES = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def table2():
    return run_table2("yeast-I-small", CORES)


def test_table2_artifact_and_shape(table2, benchmark, write_artifact):
    table, runs = table2
    write_artifact("table2_yeast1_small.txt", table.render())

    # Work counters are schedule-invariant.
    assert len({r.total_candidates for r in runs}) == 1
    assert len({r.n_efms for r in runs}) == 1

    # Modeled generation time scales down ~linearly (paper's headline row).
    gen = [r.modeled.gen_cand for r in runs]
    assert all(gen[i + 1] <= gen[i] for i in range(len(gen) - 1))
    assert gen[0] / gen[-1] == pytest.approx(CORES[-1], rel=0.35)

    # Communicate grows with rank count; absent on one rank.
    comm = [r.modeled.communicate for r in runs]
    assert comm[0] == 0.0
    assert comm[-1] > comm[1] > 0.0

    # Benchmark the 4-rank end-to-end run (host time).
    from repro.parallel.combinatorial import combinatorial_parallel
    from repro.efm.api import build_problem_with_split
    from repro.models.variants import yeast_1_small
    from repro.network.compression import compress_network

    rec = compress_network(yeast_1_small())
    problem, _ = build_problem_with_split(rec.reduced)
    result = benchmark.pedantic(
        lambda: combinatorial_parallel(problem, 4), rounds=3, iterations=1
    )
    # Raw split-space mode count >= folded EFM count (2-cycle artifacts).
    assert result.result.n_efms >= runs[0].n_efms


def test_table2_thread_backend_equivalent(yeast1_small_problem):
    """The scaling table's sequential engine and the true thread backend
    produce identical EFM sets."""
    import numpy as np

    from repro.parallel.combinatorial import combinatorial_parallel

    _, problem, _ = yeast1_small_problem
    seq = combinatorial_parallel(problem, 4, backend="sequential")
    thr = combinatorial_parallel(problem, 4, backend="thread")
    assert np.array_equal(
        np.sort(seq.result.modes.supports.words, axis=0),
        np.sort(thr.result.modes.supports.words, axis=0),
    )
