"""Support-first candidate pipeline benchmark: deferred vs eager.

Workload: Algorithm 3 (combined divide-and-conquer) on yeast Network I
(small variant) with a ``q_sub = 5`` tail partition, 20 simulated MPI
ranks per subproblem — the shape where both the retained candidate
footprint and the Communicate&Merge allgather traffic matter, and where
the eager merge's per-rank unpack/concat chain (O(n_ranks) work per
iteration) is visible.

The deferred pipeline carries candidates as packed support words plus
``(i, j)`` int32 pair indices (combination coefficients are recomputed
on receive from the replicated mode matrix), materializing dense rows
only for accepted survivors; the eager reference materializes every
prefilter survivor up front.  Measured per pipeline:

* ``t_gen_cand`` / ``t_merge`` — host seconds for the generation and
  dedup/merge phases.  Aggregated as the per-iteration **minimum across
  ranks**: under the turn-locked sequential engine every rank executes
  the identical replicated merge one after another, so the minimum is a
  best-of-``n_ranks`` of the same work — standard scheduler-noise
  rejection for sub-millisecond phase windows.
* peak retained candidate-set bytes (``RunStats.peak_candidate_bytes``);
* traced allgather bytes (packed wire tuples vs dense rows);
* the EFM set, which must be bit-identical between pipelines.

The byte ratios are deterministic and asserted at their design targets.
The phase-time ratio is host noise-bound at this toy scale — the win is
real (the eager merge unpacks and chain-concats ``n_ranks`` dense parts
per iteration where the deferred merge assembles packed words once) but
lands anywhere in roughly 1.2x–1.5x on a busy host, so the hard floor is
set below that band and the design target is reported in the artifact
instead of asserted.

Writes ``BENCH_candidates.json`` plus a text table under
``benchmarks/out/``.  Repetitions come from ``REPRO_BENCH_REPS``
(default 3); each pipeline keeps its best combined phase time.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bench.tables import Table
from repro.config import AlgorithmOptions
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

Q_SUB = 5
N_RANKS = 20
REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))
#: Acceptance floors for deferred vs eager.  The byte ratios are exact
#: properties of the wire/retention format; the phase-time floor is the
#: noise-safe bound under which every observed run clears (the design
#: target, reported in the artifact, is PHASE_TIME_RATIO_TARGET).
PEAK_BYTES_RATIO_TARGET = 4.0
PHASE_TIME_RATIO_FLOOR = 1.05
PHASE_TIME_RATIO_TARGET = 1.3
ALLGATHER_BYTES_RATIO_TARGET = 10.0


def _aggregate(run) -> dict:
    solved = [s for s in run.subsets if s.stats is not None]
    # Phase times: per-iteration minimum across the rank replicas (see
    # module docstring), summed over iterations and subproblems.
    gen = merge = 0.0
    for s in run.subsets:
        if not s.rank_stats:
            continue
        for its in zip(*(rs.iterations for rs in s.rank_stats)):
            gen += min(it.t_gen_cand for it in its)
            merge += min(it.t_merge for it in its)
    return {
        "t_gen_cand": gen,
        "t_merge": merge,
        "peak_candidate_bytes": max(
            (s.stats.peak_candidate_bytes for s in solved), default=0
        ),
        "allgather_bytes": sum(
            t.allgather_bytes for s in run.subsets for t in s.rank_traces
        ),
        "n_efms": run.n_efms,
    }


@pytest.fixture(scope="module")
def pipeline_runs():
    reduced = compress_network(yeast_1_small()).reduced
    partition = select_partition_reactions(
        reduced, Q_SUB, method="tail", options=AlgorithmOptions()
    )
    out: dict = {"partition": partition}
    for pipeline in ("eager", "deferred"):
        options = AlgorithmOptions(candidate_pipeline=pipeline)
        best = None
        for _ in range(REPS):
            t0 = time.perf_counter()
            run = combined_parallel(reduced, partition, N_RANKS, options=options)
            wall = time.perf_counter() - t0
            agg = _aggregate(run)
            if best is None or (
                agg["t_gen_cand"] + agg["t_merge"]
                < best[1]["t_gen_cand"] + best[1]["t_merge"]
            ):
                best = (run, agg, wall)
        out[pipeline] = best
    return out


def test_pipelines_bit_identical(pipeline_runs):
    eager_run = pipeline_runs["eager"][0]
    deferred_run = pipeline_runs["deferred"][0]
    assert eager_run.n_efms == deferred_run.n_efms == 530
    assert np.array_equal(eager_run.efms(), deferred_run.efms())


def test_candidate_pipeline_benchmark_artifacts(pipeline_runs, write_artifact):
    _, eager, t_eager = pipeline_runs["eager"]
    _, deferred, t_deferred = pipeline_runs["deferred"]

    phase_eager = eager["t_gen_cand"] + eager["t_merge"]
    phase_deferred = deferred["t_gen_cand"] + deferred["t_merge"]
    phase_ratio = phase_eager / phase_deferred if phase_deferred > 0 else float("inf")
    peak_ratio = (
        eager["peak_candidate_bytes"] / deferred["peak_candidate_bytes"]
        if deferred["peak_candidate_bytes"]
        else float("inf")
    )
    allgather_ratio = (
        eager["allgather_bytes"] / deferred["allgather_bytes"]
        if deferred["allgather_bytes"]
        else float("inf")
    )

    table = Table(
        title=(
            f"Candidate pipeline, yeast-I-small, q_sub={Q_SUB}, "
            f"{N_RANKS} ranks/subproblem"
        ),
        columns=[
            "pipeline",
            "gen+merge [s]",
            "peak cand [B]",
            "allgather [B]",
            "EFMs",
        ],
    )
    for label, agg in (("eager", eager), ("deferred", deferred)):
        table.add_row(
            label,
            f"{agg['t_gen_cand'] + agg['t_merge']:.3f}",
            agg["peak_candidate_bytes"],
            agg["allgather_bytes"],
            agg["n_efms"],
        )
    table.add_row(
        "ratio",
        f"{phase_ratio:.2f}x",
        f"{peak_ratio:.1f}x",
        f"{allgather_ratio:.1f}x",
        "=",
    )
    write_artifact("BENCH_candidates.txt", table.render())

    payload = {
        "network": "yeast-I-small",
        "q_sub": Q_SUB,
        "n_ranks": N_RANKS,
        "reps": REPS,
        "eager": {
            "t_gen_cand_s": round(eager["t_gen_cand"], 4),
            "t_merge_s": round(eager["t_merge"], 4),
            "peak_candidate_bytes": eager["peak_candidate_bytes"],
            "allgather_bytes": eager["allgather_bytes"],
            "wall_s": round(t_eager, 4),
            "n_efms": eager["n_efms"],
        },
        "deferred": {
            "t_gen_cand_s": round(deferred["t_gen_cand"], 4),
            "t_merge_s": round(deferred["t_merge"], 4),
            "peak_candidate_bytes": deferred["peak_candidate_bytes"],
            "allgather_bytes": deferred["allgather_bytes"],
            "wall_s": round(t_deferred, 4),
            "n_efms": deferred["n_efms"],
        },
        "phase_time_ratio": round(phase_ratio, 3),
        "peak_candidate_bytes_ratio": round(peak_ratio, 3),
        "allgather_bytes_ratio": round(allgather_ratio, 3),
        "targets": {
            "phase_time_ratio": PHASE_TIME_RATIO_TARGET,
            "phase_time_ratio_floor": PHASE_TIME_RATIO_FLOOR,
            "peak_candidate_bytes_ratio": PEAK_BYTES_RATIO_TARGET,
            "allgather_bytes_ratio": ALLGATHER_BYTES_RATIO_TARGET,
        },
        "meets_phase_target": phase_ratio >= PHASE_TIME_RATIO_TARGET,
    }
    write_artifact("BENCH_candidates.json", json.dumps(payload, indent=2))

    assert peak_ratio >= PEAK_BYTES_RATIO_TARGET, (
        f"peak candidate bytes ratio {peak_ratio:.2f} below "
        f"{PEAK_BYTES_RATIO_TARGET}"
    )
    assert allgather_ratio >= ALLGATHER_BYTES_RATIO_TARGET, (
        f"allgather bytes ratio {allgather_ratio:.2f} below "
        f"{ALLGATHER_BYTES_RATIO_TARGET}"
    )
    assert phase_ratio >= PHASE_TIME_RATIO_FLOOR, (
        f"gen+merge time ratio {phase_ratio:.2f} below the noise-safe "
        f"floor {PHASE_TIME_RATIO_FLOOR} (design target "
        f"{PHASE_TIME_RATIO_TARGET})"
    )
