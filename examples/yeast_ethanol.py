#!/usr/bin/env python3
"""Ethanol-production analysis of the S. cerevisiae network.

The paper's motivating applications ([1]-[12]) use EFMs to characterize
cellular capabilities.  This example computes the modes of a constrained
variant of the paper's Network I (Figures 3-4) and asks classic
metabolic-engineering questions:

* how many modes ferment glucose to ethanol, and at what molar yields?
* which mode achieves the best ethanol yield, and through which pathway?
* how do the modes distribute across product classes (ethanol, acetate,
  succinate, glycerol, biomass)?

Run:  python examples/yeast_ethanol.py
"""

import numpy as np

from repro import compute_efms
from repro.efm.analysis import best_yield_mode, classify_modes, yields
from repro.models.variants import yeast_1_small


def main() -> None:
    network = yeast_1_small()
    print(network)

    result = compute_efms(network)
    print(result.summary())
    result.validate(check_minimality=False)

    # R62 is the glucose-PTS uptake; R66 exports ethanol.
    ethanol_modes = result.with_active("R66")
    print(
        f"\n{ethanol_modes.n_efms} of {result.n_efms} modes export ethanol "
        f"({100 * ethanol_modes.n_efms / result.n_efms:.1f}%)"
    )

    y = yields(result, "R66", "R62")
    usable = y[~np.isnan(y)]
    print(
        f"ethanol yield over glucose: min {np.nanmin(y):.3f}, "
        f"mean {usable.mean():.3f}, max {np.nanmax(y):.3f} mol/mol"
    )

    best_i, best_y = best_yield_mode(result, "R66", "R62")
    print(f"\nbest ethanol mode (yield {best_y:.3f} mol ethanol / mol glucose):")
    for rxn, flux in sorted(result.mode_as_dict(best_i).items()):
        print(f"  {rxn:>6s}: {flux: .4f}")

    classes = classify_modes(
        result,
        {
            "ethanol (R66)": "R66",
            "acetate (R63)": "R63",
            "succinate (R67)": "R67",
            "glycerol (R60)": "R60",
            "biomass (R70)": "R70",
            "CO2 (R69)": "R69",
        },
    )
    print("\nmode classes (a mode may use several products):")
    for label, count in classes.items():
        print(f"  {label:>16s}: {count}")

    # Theoretical check: fermentation caps at 2 ethanol per glucose.
    assert np.nanmax(y) <= 2.0 + 1e-6, "ethanol yield cannot exceed 2 mol/mol"


if __name__ == "__main__":
    main()
