#!/usr/bin/env python3
"""Algorithm 3: divide-and-conquer partitioning of the EFM space.

Demonstrates §II.E / §III on two workloads:

1. the toy network, partitioned across its two reversible reactions
   {r6r, r8r} — reproducing the paper's four 2-mode subsets; and
2. a constrained yeast Network I variant, comparing the cumulative number
   of intermediate candidate modes of the split against the unsplit run
   (the paper's Table III effect: 159.6e9 -> 81.7e9 candidates), plus the
   automated partition-selection heuristics of §IV.C.

Run:  python examples/divide_and_conquer.py
"""

from repro import compress_network, compute_efms, toy_network
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import estimate_subset_counts, select_partition_reactions
from repro.models.variants import yeast_1_small


def main() -> None:
    # --- toy network: the §III.A worked example -------------------------
    record = compress_network(toy_network())
    reduced = record.reduced
    run = combined_parallel(reduced, ("r6r", "r8r"), n_ranks=2)
    print("toy network partitioned across {r6r, r8r}:")
    for s in run.subsets:
        print(
            f"  subset {s.spec.subset_id} [{s.spec.label():>10s}]: "
            f"{s.n_efms} EFMs, {s.n_candidates} candidate(s)"
        )
    print(f"  union: {run.n_efms} EFMs (paper: 2+2+2+2 = 8)\n")
    assert [s.n_efms for s in run.subsets] == [2, 2, 2, 2]

    # --- yeast variant: candidate-count reduction ------------------------
    network = yeast_1_small()
    whole = compute_efms(network, method="parallel", n_ranks=4)
    assert whole.stats is not None
    unsplit_candidates = whole.stats.total_candidates
    print(f"{network.name}: {whole.n_efms} EFMs, "
          f"{unsplit_candidates:,} candidates unsplit")

    rec = compress_network(network)
    for method in ("tail", "balance"):
        partition = select_partition_reactions(rec.reduced, 2, method=method)
        dnc = combined_parallel(rec.reduced, partition, n_ranks=4)
        ratio = dnc.total_candidates / max(1, unsplit_candidates)
        print(
            f"  partition by {method!r} -> {{{', '.join(partition)}}}: "
            f"{dnc.total_candidates:,} cumulative candidates "
            f"({ratio:.2f}x unsplit), {dnc.n_efms} EFMs"
        )
        assert dnc.n_efms == whole.n_efms, "every split must preserve the EFM set"

    # --- pre-planning: estimate subset sizes before committing ----------
    partition = select_partition_reactions(rec.reduced, 2, method="tail")
    estimates = estimate_subset_counts(rec.reduced, partition, mode_budget=20_000)
    print(f"\nper-subset candidate estimates for {{{', '.join(partition)}}}:")
    for subset_id, count in estimates.items():
        shown = f"{count:,}" if count is not None else "> budget"
        print(f"  subset {subset_id}: {shown}")


if __name__ == "__main__":
    main()
