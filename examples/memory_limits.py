#!/usr/bin/env python3
"""The paper's §IV memory story, end to end.

On Network II the combinatorial parallel algorithm "had to be abandoned at
the 59th iteration, two iterations before completion" because the
replicated mode matrix outgrew Blue Gene/P's 4 GB nodes; a 3-reaction
divide-and-conquer split still left two oversized subsets, and the authors
manually added a 4th partition reaction to those.  This example replays
the whole mechanism at benchmark scale with an explicit MemoryModel and
the automated adaptive splitter (the paper's future-work item: "an
automated method ... would be helpful to make the combined parallel
Nullspace Algorithm a fully automated procedure").

Run:  python examples/memory_limits.py
"""

from repro import OutOfMemoryError, compress_network
from repro.cluster.memory import MemoryModel
from repro.dnc.adaptive import adaptive_combined
from repro.dnc.selection import select_partition_reactions
from repro.efm.api import build_problem_with_split
from repro.models.variants import yeast_2_small
from repro.parallel.combinatorial import combinatorial_parallel


def main() -> None:
    network = yeast_2_small()
    rec = compress_network(network)
    print(rec.summary())
    problem, _split = build_problem_with_split(rec.reduced)

    # Calibrate a "node size" against this workload: measure the peak
    # replica footprint, then allow only ~70% of it — our stand-in for
    # "a 63x83 network against 4 GB nodes".
    probe = MemoryModel(capacity_bytes=1, enforcing=False)
    combinatorial_parallel(problem, 1, memory_model=probe)
    capacity = int(0.7 * probe.peak_bytes)
    memory = MemoryModel(capacity_bytes=capacity)
    print(f"peak replica: {probe.peak_bytes:,} B -> modeled node cap {capacity:,} B")

    # 1. Algorithm 2 alone dies near the end, like the paper's iteration 59.
    try:
        combinatorial_parallel(problem, 4, memory_model=memory)
        raise SystemExit("expected an OutOfMemoryError")
    except OutOfMemoryError as exc:
        total = problem.q - problem.first_row
        done = exc.iteration - problem.first_row + 1
        print(
            f"\nAlgorithm 2 alone: OUT OF MEMORY at iteration {done} of "
            f"{total} (needed {exc.required_bytes:,} B, cap "
            f"{exc.capacity_bytes:,} B)"
        )

    # 2-3. The combined algorithm with automatic refinement completes.
    partition = select_partition_reactions(rec.reduced, 2, method="tail")
    print(f"\ninitial partition: {partition}")
    adaptive = adaptive_combined(rec.reduced, partition, 4, memory)
    assert adaptive.complete

    for ev in adaptive.events:
        print(
            f"  subset [{ev.parent.label()}] exceeded memory at iteration "
            f"{ev.at_iteration} -> refined with {ev.added_reaction}"
        )
    print(f"\nfinal subsets ({len(adaptive.combined.subsets)}):")
    for s in adaptive.combined.subsets:
        print(
            f"  [{s.spec.label():>28s}] {s.n_efms:6d} EFMs, "
            f"{s.n_candidates:11,d} candidates"
        )
    print(
        f"\ncomplete: {adaptive.combined.n_efms:,} EFMs computed under a "
        f"memory cap that defeated Algorithm 2 "
        f"({len(adaptive.events)} automatic refinement(s))"
    )


if __name__ == "__main__":
    main()
