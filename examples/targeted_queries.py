#!/usr/bin/env python3
"""Targeted EFM queries and extreme-pathway classification.

§IV.C of the paper notes that enumerating the modes through a specific
reaction — or deciding whether a mode through several reactions exists —
is NP-hard.  Proposition 1 nevertheless turns both into *single*
divide-and-conquer subproblems, so the questions metabolic engineers
actually ask ("which modes make ethanol?", "can succinate and ethanol be
co-produced?") run without full enumeration.

Also demonstrates the extreme-pathway machinery from the authors' rank-
test paper (ref [30]): ExPas are the extreme rays of the fully split flux
cone, a (often strict) subset of the split network's elementary modes.

Run:  python examples/targeted_queries.py
"""

import numpy as np

from repro import compute_efms, toy_network
from repro.efm.extreme_pathways import classify_extreme, extreme_pathways
from repro.efm.targeted import efms_avoiding, efms_through, exists_mode_through
from repro.models.variants import yeast_1_small


def main() -> None:
    net = yeast_1_small()
    full = compute_efms(net, method="parallel", n_ranks=1)
    assert full.stats is not None
    print(f"{net.name}: {full.n_efms} EFMs, "
          f"{full.stats.total_candidates:,} candidates for full enumeration")

    # Which modes export ethanol?  One subproblem instead of everything.
    ethanol = efms_through(net, "R66")
    print(
        f"\nmodes through R66 (ethanol export): {ethanol.n_efms} "
        f"({ethanol.meta['candidates']:,} candidates — "
        f"{ethanol.meta['candidates'] / full.stats.total_candidates:.0%} of full)"
    )

    # Which modes survive without alcohol dehydrogenase?
    no_adh = efms_avoiding(net, "R40")
    print(f"modes avoiding R40 (ADH knockout): {no_adh.n_efms}")

    # Decision queries (§IV.C's NP-hard problems, answered directly).
    for combo in (("R66", "R67"), ("R66", "R63"), ("R66", "R67", "R63")):
        ok = exists_mode_through(net, combo)
        print(f"co-production mode through {combo}: {'EXISTS' if ok else 'impossible'}")

    # --- extreme pathways on the toy network --------------------------------
    toy = toy_network()
    expas = extreme_pathways(toy)
    extreme = classify_extreme(expas)
    print(
        f"\ntoy network: {expas.n_efms} split-network elementary modes, "
        f"{int(extreme.sum())} of them extreme pathways (ref [30]: "
        "ExPas ⊆ split-network EFMs)"
    )
    for i in np.nonzero(~extreme)[0]:
        print(f"  mode {i} is elementary but NOT extreme "
              "(a conic combination of extreme pathways)")


if __name__ == "__main__":
    main()
