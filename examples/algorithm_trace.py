#!/usr/bin/env python3
"""Reproduce Figure 2: the iteration-by-iteration nullspace matrices.

The paper walks the Nullspace Algorithm through the toy network, printing
the intermediate matrices K(1)...K(5).  This example records the same trace
with ``AlgorithmOptions(record_trace=True, arithmetic="exact")`` so the
matrices come out in exact integers, and narrates each iteration's
pos/neg split, candidates, duplicates and rank-test outcomes (§II.C).

Run:  python examples/algorithm_trace.py
"""

import numpy as np

from repro import AlgorithmOptions, compress_network, toy_network
from repro.core.kernel import build_problem
from repro.core.serial import nullspace_algorithm


def print_matrix(names, matrix) -> None:
    width = max(len(n) for n in names)
    for name, row in zip(names, matrix):
        cells = " ".join(f"{x:5.3g}" for x in row)
        print(f"    {name:>{width}s} | {cells}")


def main() -> None:
    record = compress_network(toy_network())
    # free_hint pins the identity block to {r2, r4, r5, r7} so the kernel
    # matches eq. (5) of the paper literally.
    options = AlgorithmOptions(arithmetic="exact", record_trace=True)
    problem = build_problem(
        record.reduced, options=options, free_hint=("r2", "r4", "r5", "r7")
    )

    print("row order (eq. 5/6):", " ".join(problem.names))
    print("\nK(1) — initial nullspace matrix (eq. 5):")
    print_matrix(problem.names, problem.kernel)

    result = nullspace_algorithm(problem, options=options)

    for snap, it in zip(result.trace, result.stats.iterations):
        print(
            f"\niteration at row {it.position} ({it.reaction}"
            f"{', reversible' if it.reversible else ''}): "
            f"{it.n_pos} positive x {it.n_neg} negative -> {it.n_pairs} "
            f"candidate(s), {it.n_duplicates} duplicate(s), "
            f"{it.n_tested} rank-tested, {it.n_accepted} accepted"
            + (f", {it.n_neg_removed} negative column(s) removed"
               if it.n_neg_removed else "")
        )
        print(f"  K after this iteration ({snap.matrix.shape[1]} columns):")
        print_matrix(snap.row_names, snap.matrix)

    print(f"\nfinal: {result.n_efms} elementary flux modes")
    # The §II.C narrative checkpoints:
    by_name = {it.reaction: it for it in result.stats.iterations}
    assert by_name["r1"].n_pairs == 0, "r1: all entries non-negative, no pairs"
    assert by_name["r3"].n_pairs == 1 and by_name["r3"].n_accepted == 1
    assert by_name["r6r"].n_pairs == 1 and by_name["r6r"].n_accepted == 1
    assert by_name["r8r"].n_pairs == 4, "2 pos x 2 neg at r8r"
    assert by_name["r8r"].n_tested == 3, "one duplicate -> only three probed"
    assert result.n_efms == 8
    print("matches the paper's §II.C walk-through exactly")


if __name__ == "__main__":
    main()
