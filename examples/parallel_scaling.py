#!/usr/bin/env python3
"""Algorithm 2 on simulated ranks: replication, backends, modeled scaling.

Runs the combinatorial parallel Nullspace Algorithm at several rank counts
on all three message-passing backends (deterministic sequential engine,
lockstep threads, real OS processes), verifies the replicas agree with the
serial algorithm, and prints the modeled Calhoun scaling table — a small
Table II.

Run:  python examples/parallel_scaling.py
"""

from repro import compress_network, compute_efms
from repro.bench.modeling import model_run
from repro.cluster.platform import CALHOUN
from repro.efm.api import build_problem_with_split
from repro.models.variants import yeast_1_small
from repro.parallel.combinatorial import combinatorial_parallel


def main() -> None:
    network = yeast_1_small()
    serial = compute_efms(network)
    print(f"serial reference: {serial.summary()}")

    rec = compress_network(network)
    problem, _split = build_problem_with_split(rec.reduced)

    print("\nbackend equivalence (4 ranks):")
    for backend in ("sequential", "thread", "process"):
        run = combinatorial_parallel(problem, 4, backend=backend)
        parallel = compute_efms(network, method="parallel", n_ranks=4, backend=backend)
        ok = serial.same_modes_as(parallel)
        print(
            f"  {backend:>10s}: {parallel.n_efms} EFMs, "
            f"{run.stats.total_candidates:,} candidates "
            f"{'== serial' if ok else '!!! MISMATCH'}"
        )
        assert ok

    print(f"\nmodeled strong scaling on {CALHOUN.name} "
          "(gen-cand work splits across ranks):")
    print(f"  {'ranks':>5s} {'gen (ms)':>9s} {'test (ms)':>9s} "
          f"{'comm (ms)':>9s} {'merge (ms)':>10s} {'total (ms)':>10s}")
    base = None
    for ranks in (1, 2, 4, 8, 16):
        run = combinatorial_parallel(problem, ranks)
        m = model_run(run.rank_stats, run.rank_traces, CALHOUN)
        if base is None:
            base = m.total
        print(
            f"  {ranks:5d} {m.gen_cand * 1e3:9.3f} {m.rank_test * 1e3:9.3f} "
            f"{m.communicate * 1e3:9.3f} {m.merge * 1e3:10.3f} "
            f"{m.total * 1e3:10.3f}  (speedup {base / m.total:4.2f}x)"
        )


if __name__ == "__main__":
    main()
