#!/usr/bin/env python3
"""Quickstart: compute the elementary flux modes of the paper's toy network.

Reproduces §II of the paper end to end: the 5x9 network of Figure 1 is
compressed to the 4x8 network of eq. (4) (metabolite D disappears, r9 is
merged into r3), the initial nullspace matrix comes out in the (I; R) form
of eq. (5), and the Nullspace Algorithm finds the 8 elementary flux modes
of eq. (7).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compress_network, compute_efms, toy_network

def main() -> None:
    network = toy_network()
    print(network)
    for rxn in network.reactions:
        from repro.network.parser import format_reaction

        print("  ", format_reaction(rxn))

    # The preprocessing reduction step (§II.C).
    record = compress_network(network)
    print("\ncompression:", record.summary())
    print("merged groups:", {k: v for k, v in record.merged_groups.items() if len(v) > 1})

    # One call does compression + kernel + Nullspace Algorithm + expansion.
    result = compute_efms(network)
    print("\n" + result.summary())

    # Validate the defining properties: steady state, thermodynamic
    # feasibility, support minimality.
    result.validate()
    print("validated: N@e = 0, irreversible fluxes >= 0, supports minimal")

    # Print the integerized EFM matrix like the paper's eq. (7)
    # (columns = modes, rows = reactions).
    efms = result.integerized().T
    print("\nEFM matrix (rows = reactions, columns = the 8 modes):")
    width = max(len(n) for n in network.reaction_names)
    for name, row in zip(network.reaction_names, efms):
        cells = " ".join(f"{int(x):3d}" for x in row)
        print(f"  {name:>{width}s} | {cells}")

    # Every mode as a readable dictionary.
    print("\nmodes:")
    for i in range(result.n_efms):
        print(f"  EFM {i + 1}: {result.mode_as_dict(i)}")

    assert result.n_efms == 8, "the toy network has exactly 8 EFMs (eq. (7))"


if __name__ == "__main__":
    main()
