#!/usr/bin/env python3
"""Gene-knockout screening with elementary flux modes (paper refs [4]-[7]).

EFMs make deletion studies trivial: the modes of a knockout network are
exactly the wild-type modes that never use the deleted reactions.  This
example screens single deletions of a constrained yeast Network I variant
for their effect on ethanol production, finds the minimal cut sets that
abolish it, and shows the Trinh-style "minimal functional cell" idea of
constraining a network down to its most efficient modes.

Run:  python examples/knockout_study.py
"""

from repro import compute_efms
from repro.efm.analysis import (
    knockout,
    knockout_screen,
    minimal_cut_sets,
    yields,
)
from repro.models.variants import yeast_1_small

import numpy as np


def main() -> None:
    network = yeast_1_small()
    wild_type = compute_efms(network)
    print(f"wild type: {wild_type.summary()}")

    ethanol = "R66"  # ethanol export
    producers = wild_type.with_active(ethanol)
    print(f"{producers.n_efms} modes export ethanol\n")

    # --- single-deletion screen ------------------------------------------
    # Screen the fermentation/TCA-adjacent reactions for their effect on
    # the total and the ethanol-producing mode counts.
    targets = [r.name for r in network.reactions
               if r.name not in (ethanol, "R62", "R59")][:30]
    reports = knockout_screen(wild_type, targets=targets, objective=ethanol)
    reports.sort(key=lambda r: (r.n_objective_surviving or 0, r.n_surviving))
    print("single knockouts most damaging to ethanol production:")
    print(f"  {'deletion':>10s} {'modes left':>10s} {'EtOH modes left':>15s}")
    for rep in reports[:10]:
        print(
            f"  {rep.targets[0]:>10s} {rep.n_surviving:10d} "
            f"{rep.n_objective_surviving:15d}"
        )

    # --- minimal cut sets --------------------------------------------------
    cuts = minimal_cut_sets(
        wild_type, ethanol, max_size=2,
        candidates=[r.name for r in network.reactions
                    if r.name.startswith("R4") or r.name in ("R38", "R40", "R32r")],
    )
    print(f"\nminimal cut sets (size <= 2) abolishing ethanol export: {cuts}")
    for cut in cuts:
        after = knockout(wild_type, cut)
        assert after.with_active(ethanol).n_efms == 0

    # --- strain design: keep only high-yield modes -----------------------
    y = yields(wild_type, ethanol, "R62")
    best = np.nanmax(y)
    efficient = int((y >= 0.9 * best).sum())
    print(
        f"\n{efficient} modes reach >= 90% of the best ethanol yield "
        f"({best:.3f} mol/mol); a minimal-cell design would delete "
        "reactions unused by those modes"
    )
    used = wild_type.supports()[y >= 0.9 * best].any(axis=0)
    deletable = [n for n, u in zip(network.reaction_names, used) if not u]
    print(f"reactions unused by all near-optimal modes: {deletable}")


if __name__ == "__main__":
    main()
